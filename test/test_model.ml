(* Tests for the device descriptions, the FlexCL analytical model, the
   ground-truth simulator, the SDAccel-like baseline and the DSE engine. *)

module Device = Flexcl_device.Device
module Opcode = Flexcl_ir.Opcode
module Launch = Flexcl_ir.Launch
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Sysrun = Flexcl_simrtl.Sysrun
module Sdaccel = Flexcl_simrtl.Sdaccel_estimate
module Space = Flexcl_dse.Space
module Explore = Flexcl_dse.Explore
module Heuristic = Flexcl_dse.Heuristic
module Stats = Flexcl_util.Stats

let check = Alcotest.check
let dev = Device.virtex7

let cfg ?(wg = 64) ?(pe = 1) ?(cu = 1) ?(pipe = false) ?(mode = Config.Barrier_mode) () =
  { Config.wg_size = wg; n_pe = pe; n_cu = cu; wi_pipeline = pipe; comm_mode = mode }

(* ------------------------------------------------------------------ *)
(* Device *)

let test_device_latency_is_variant_mean () =
  List.iter
    (fun op ->
      let v = Device.op_variants dev op in
      let sum = Array.fold_left ( + ) 0 v in
      let mean = (sum + (Array.length v / 2)) / Array.length v in
      check Alcotest.int (Opcode.to_string op) mean (Device.op_latency dev op))
    Opcode.all

let test_device_variant_in_set () =
  List.iter
    (fun op ->
      for salt = 0 to 50 do
        let l = Device.variant_latency dev op ~salt in
        check Alcotest.bool "variant from set" true
          (Array.exists (fun x -> x = l) (Device.op_variants dev op))
      done)
    Opcode.all

let test_device_zero_latency_ops () =
  check Alcotest.int "live_in free" 0 (Device.op_latency dev Opcode.Live_in);
  check Alcotest.int "const free" 0 (Device.op_latency dev Opcode.Const_op);
  check Alcotest.int "wi query free" 0 (Device.op_latency dev Opcode.Wi_query)

let test_device_platforms_differ () =
  check Alcotest.bool "UltraScale float add faster" true
    (Device.op_latency Device.ku060 Opcode.Float_add
    < Device.op_latency Device.virtex7 Opcode.Float_add);
  check Alcotest.bool "fewer DSPs on KU060" true
    (Device.ku060.Device.dsp_total < Device.virtex7.Device.dsp_total)

let test_device_ports () =
  check Alcotest.int "read ports" 4 (Device.local_read_ports dev);
  check Alcotest.int "write ports" 4 (Device.local_write_ports dev)

let test_cycles_to_seconds () =
  check (Alcotest.float 1e-12) "200 MHz" 1e-6 (Device.cycles_to_seconds dev 200.0)

(* ------------------------------------------------------------------ *)
(* Model basics on the shared sample kernel *)

let analysis = lazy (Thelpers.sample_analysis ())

let estimate ?wg ?pe ?cu ?pipe ?mode () =
  Model.estimate dev (Lazy.force analysis) (cfg ?wg ?pe ?cu ?pipe ?mode ())

let test_model_positive_cycles () =
  let b = estimate () in
  check Alcotest.bool "cycles > 0" true (b.Model.cycles > 0.0);
  check Alcotest.bool "seconds consistent" true
    (Float.abs (b.Model.seconds -. Device.cycles_to_seconds dev b.Model.cycles) < 1e-12)

let test_model_eq1_structure () =
  (* Eq. 1: L_PE = II (N_wi - 1) + D *)
  let b = estimate ~pipe:true () in
  check (Alcotest.float 1e-6) "Eq. 1"
    ((float_of_int b.Model.ii_wi *. 63.0) +. float_of_int b.Model.depth_pe)
    b.Model.l_pe

let test_model_pipelining_helps () =
  let nopipe = estimate ~mode:Config.Pipeline_mode () in
  let pipe = estimate ~pipe:true ~mode:Config.Pipeline_mode () in
  check Alcotest.bool "work-item pipelining reduces cycles" true
    (pipe.Model.cycles < nopipe.Model.cycles)

let test_model_ii_at_least_mii () =
  let b = estimate ~pipe:true () in
  check Alcotest.bool "ii >= rec" true (b.Model.ii_wi >= b.Model.rec_mii);
  check Alcotest.bool "ii >= res" true (b.Model.ii_wi >= b.Model.res_mii)

let test_model_more_cu_never_slower () =
  let one = estimate ~cu:1 ~pipe:true ~mode:Config.Pipeline_mode () in
  let four = estimate ~cu:4 ~pipe:true ~mode:Config.Pipeline_mode () in
  check Alcotest.bool "cu scaling monotone" true
    (four.Model.cycles <= one.Model.cycles +. 1e-6)

let test_model_more_pe_never_slower () =
  let one = estimate ~pe:1 ~pipe:true ~mode:Config.Pipeline_mode () in
  let four = estimate ~pe:4 ~pipe:true ~mode:Config.Pipeline_mode () in
  check Alcotest.bool "pe scaling monotone" true
    (four.Model.cycles <= one.Model.cycles +. 1e-6)

let test_model_pattern_counts_nonnegative () =
  let b = estimate () in
  check Alcotest.int "8 patterns" 8 (List.length b.Model.pattern_counts);
  List.iter
    (fun (_, c) -> check Alcotest.bool "count >= 0" true (c >= 0.0))
    b.Model.pattern_counts

let test_model_eq9_memory_latency () =
  (* Eq. 9: L_mem is the dot product of counts and the profiled table *)
  let b = estimate () in
  let table = Model.pattern_latencies dev in
  let expected =
    List.fold_left
      (fun acc (p, c) -> acc +. (c *. List.assoc p table))
      0.0 b.Model.pattern_counts
  in
  check (Alcotest.float 1e-6) "Eq. 9" expected b.Model.l_mem_wi

let test_model_feasible () =
  check Alcotest.bool "modest config feasible" true
    (Model.feasible dev (Lazy.force analysis) (cfg ()));
  check Alcotest.bool "absurd CU count infeasible" false
    (Model.feasible dev (Lazy.force analysis) (cfg ~cu:1000 ()));
  check Alcotest.bool "pe > wg infeasible" false
    (Model.feasible dev (Lazy.force analysis) (cfg ~wg:32 ~pe:64 ()))

let test_model_bottleneck_strings () =
  let b = estimate ~pipe:true ~mode:Config.Pipeline_mode () in
  let known =
    [ "global memory"; "recurrence"; "local-memory ports"; "DSP"; "compute depth";
      "scheduling overhead" ]
  in
  check Alcotest.bool "bottleneck is a known label" true
    (List.mem (Model.bottleneck b) known)

let test_model_wg_size_reanalysis () =
  (* estimate with a different wg size re-analyzes transparently *)
  let b = estimate ~wg:128 () in
  check Alcotest.bool "positive" true (b.Model.cycles > 0.0)

let test_model_recurrence_kernel () =
  (* accumulator into a shared location forces RecMII above 1 *)
  let launch =
    Launch.make ~global:(Launch.dim3 256) ~local:(Launch.dim3 64)
      ~args:[ ("out", Launch.Buffer { length = 8; init = Launch.Zeros }) ]
  in
  let a =
    Analysis.of_source
      {|__kernel void acc(__global float* out) {
          out[0] = out[0] + 1.0f;
        }|}
      launch
  in
  let b = Model.estimate dev a (cfg ~pipe:true ~mode:Config.Pipeline_mode ()) in
  check Alcotest.bool "rec mii > 1" true (b.Model.rec_mii > 1);
  check Alcotest.bool "ii reflects recurrence" true (b.Model.ii_wi >= b.Model.rec_mii)

let test_model_determinism () =
  let a = estimate () and b = estimate () in
  check (Alcotest.float 0.0) "bitwise equal" a.Model.cycles b.Model.cycles

(* ------------------------------------------------------------------ *)
(* Sysrun *)

let test_sysrun_positive_and_deterministic () =
  let r1 = Sysrun.run dev (Lazy.force analysis) (cfg ()) in
  let r2 = Sysrun.run dev (Lazy.force analysis) (cfg ()) in
  check Alcotest.bool "positive" true (r1.Sysrun.cycles > 0.0);
  check (Alcotest.float 0.0) "deterministic" r1.Sysrun.cycles r2.Sysrun.cycles

let test_sysrun_seed_changes_result () =
  let r1 = Sysrun.run ~seed:1 dev (Lazy.force analysis) (cfg ()) in
  let r2 = Sysrun.run ~seed:2 dev (Lazy.force analysis) (cfg ()) in
  check Alcotest.bool "different synthesis outcomes" true
    (r1.Sysrun.cycles <> r2.Sysrun.cycles)

let test_sysrun_memory_traffic () =
  let r = Sysrun.run dev (Lazy.force analysis) (cfg ()) in
  check Alcotest.bool "simulated transactions" true (r.Sysrun.mem_transactions > 0)

let test_model_tracks_sysrun () =
  (* the headline property: the analytical model lands near the simulator *)
  let configs =
    [
      cfg ();
      cfg ~pipe:true ~mode:Config.Pipeline_mode ();
      cfg ~pe:4 ~cu:2 ~pipe:true ~mode:Config.Pipeline_mode ();
      cfg ~wg:128 ~pe:2 ~cu:2 ~pipe:true ~mode:Config.Pipeline_mode ();
    ]
  in
  let errs =
    List.map
      (fun c ->
        let m = Model.cycles dev (Lazy.force analysis) c in
        let s = (Sysrun.run dev (Lazy.force analysis) c).Sysrun.cycles in
        Stats.abs_pct_error ~actual:s ~predicted:m)
      configs
  in
  check Alcotest.bool
    (Printf.sprintf "mean error %.1f%% below 20%%" (Stats.mean errs))
    true
    (Stats.mean errs < 20.0)

(* ------------------------------------------------------------------ *)
(* SDAccel baseline *)

let test_sdaccel_unsupported_shapes () =
  check Alcotest.bool "high PE replication fails" false
    (Sdaccel.supported (Lazy.force analysis) (cfg ~pe:8 ()));
  check Alcotest.bool "multi-CU with local memory fails" false
    (Sdaccel.supported (Lazy.force analysis) (cfg ~cu:4 ()))

let test_sdaccel_failure_rate_band () =
  (* across the design space, a realistic fraction of points fails *)
  let a = Lazy.force analysis in
  let space = Space.default ~total_work_items:1024 in
  let pts = Space.feasible_points dev a space in
  let failures =
    List.length (List.filter (fun c -> not (Sdaccel.supported a c)) pts)
  in
  let rate = float_of_int failures /. float_of_int (List.length pts) in
  check Alcotest.bool (Printf.sprintf "failure rate %.0f%% in [20%%, 60%%]" (rate *. 100.))
    true
    (rate > 0.2 && rate < 0.6)

let test_sdaccel_worse_than_flexcl () =
  let a = Lazy.force analysis in
  let space = Space.default ~total_work_items:1024 in
  let pts =
    Space.feasible_points dev a space
    |> List.filter (Sdaccel.supported a)
    |> List.filteri (fun i _ -> i mod 4 = 0)
  in
  let pairs =
    List.map
      (fun c ->
        let a' = Explore.analysis_for a c.Config.wg_size in
        let s = (Sysrun.run dev a' c).Sysrun.cycles in
        let m = Model.cycles dev a' c in
        let sd = Option.get (Sdaccel.estimate dev a' c) in
        ( Stats.abs_pct_error ~actual:s ~predicted:m,
          Stats.abs_pct_error ~actual:s ~predicted:sd ))
      pts
  in
  let flexcl = Stats.mean (List.map fst pairs) in
  let sdaccel = Stats.mean (List.map snd pairs) in
  check Alcotest.bool
    (Printf.sprintf "flexcl %.1f%% < sdaccel %.1f%%" flexcl sdaccel)
    true (flexcl < sdaccel)

(* ------------------------------------------------------------------ *)
(* DSE *)

let test_space_default_shape () =
  let s = Space.default ~total_work_items:1024 in
  check Alcotest.int "4 wg sizes" 4 (List.length s.Space.wg_sizes);
  check Alcotest.int "raw points" 192 (Space.size s)

let test_space_respects_divisibility () =
  let s = Space.default ~total_work_items:96 in
  List.iter
    (fun w -> check Alcotest.int "divides" 0 (96 mod w))
    s.Space.wg_sizes

let test_exhaustive_sorted () =
  let a = Lazy.force analysis in
  let space = Space.default ~total_work_items:1024 in
  let evald = Explore.exhaustive dev a space (Explore.model_oracle dev) in
  check Alcotest.bool "non-empty" true (evald <> []);
  let rec sorted = function
    | x :: y :: rest -> x.Explore.cycles <= y.Explore.cycles && sorted (y :: rest)
    | _ -> true
  in
  check Alcotest.bool "ascending" true (sorted evald)

let test_best_beats_default () =
  let a = Lazy.force analysis in
  let space = Space.default ~total_work_items:1024 in
  let best = Explore.best dev a space (Explore.model_oracle dev) in
  let default_cost = Model.cycles dev a Config.default in
  check Alcotest.bool "best <= default" true (best.Explore.cycles <= default_cost)

let test_heuristic_not_better_than_exhaustive () =
  let a = Lazy.force analysis in
  let space = Space.default ~total_work_items:1024 in
  let oracle = Explore.model_oracle dev in
  let best = Explore.best dev a space oracle in
  let greedy = Heuristic.search dev a space oracle in
  check Alcotest.bool "greedy >= optimal" true
    (greedy.Explore.cycles >= best.Explore.cycles -. 1e-9)

let test_quality_vs_optimal () =
  let truth (c : Config.t) = float_of_int (c.Config.n_pe * 100) in
  let all = [ cfg ~pe:1 (); cfg ~pe:2 (); cfg ~pe:4 () ] in
  check (Alcotest.float 1e-9) "picked optimal" 0.0
    (Explore.quality_vs_optimal ~picked:(cfg ~pe:1 ()) ~truth ~all);
  check (Alcotest.float 1e-9) "picked 2x" 100.0
    (Explore.quality_vs_optimal ~picked:(cfg ~pe:2 ()) ~truth ~all)

let test_flexcl_choice_near_true_optimum () =
  (* §4.3: the design FlexCL picks is close to the simulator's optimum *)
  let a = Lazy.force analysis in
  let space = Space.default ~total_work_items:1024 in
  let picked = (Explore.best dev a space (Explore.model_oracle dev)).Explore.config in
  let pts = Space.feasible_points dev a space in
  let truth c =
    (Sysrun.run dev (Explore.analysis_for a c.Config.wg_size) c).Sysrun.cycles
  in
  (* evaluating the full truth for every point is slow; subsample plus
     the picked config *)
  let sample = List.filteri (fun i _ -> i mod 6 = 0) pts in
  let sample = if List.mem picked sample then sample else picked :: sample in
  let gap = Explore.quality_vs_optimal ~picked ~truth ~all:sample in
  check Alcotest.bool (Printf.sprintf "gap %.1f%% below 15%%" gap) true (gap < 15.0)

let suite =
  [
    Alcotest.test_case "device: latency is variant mean" `Quick
      test_device_latency_is_variant_mean;
    Alcotest.test_case "device: variants well-formed" `Quick test_device_variant_in_set;
    Alcotest.test_case "device: free ops" `Quick test_device_zero_latency_ops;
    Alcotest.test_case "device: platforms differ" `Quick test_device_platforms_differ;
    Alcotest.test_case "device: local ports" `Quick test_device_ports;
    Alcotest.test_case "device: clock conversion" `Quick test_cycles_to_seconds;
    Alcotest.test_case "model: positive cycles" `Quick test_model_positive_cycles;
    Alcotest.test_case "model: Eq. 1 structure" `Quick test_model_eq1_structure;
    Alcotest.test_case "model: pipelining helps" `Quick test_model_pipelining_helps;
    Alcotest.test_case "model: II >= MII" `Quick test_model_ii_at_least_mii;
    Alcotest.test_case "model: CU monotone" `Quick test_model_more_cu_never_slower;
    Alcotest.test_case "model: PE monotone" `Quick test_model_more_pe_never_slower;
    Alcotest.test_case "model: pattern counts" `Quick test_model_pattern_counts_nonnegative;
    Alcotest.test_case "model: Eq. 9 memory latency" `Quick test_model_eq9_memory_latency;
    Alcotest.test_case "model: feasibility" `Quick test_model_feasible;
    Alcotest.test_case "model: bottleneck labels" `Quick test_model_bottleneck_strings;
    Alcotest.test_case "model: wg re-analysis" `Quick test_model_wg_size_reanalysis;
    Alcotest.test_case "model: recurrence kernel" `Quick test_model_recurrence_kernel;
    Alcotest.test_case "model: determinism" `Quick test_model_determinism;
    Alcotest.test_case "sysrun: deterministic" `Quick test_sysrun_positive_and_deterministic;
    Alcotest.test_case "sysrun: seed sensitivity" `Quick test_sysrun_seed_changes_result;
    Alcotest.test_case "sysrun: memory traffic" `Quick test_sysrun_memory_traffic;
    Alcotest.test_case "model vs sysrun accuracy" `Slow test_model_tracks_sysrun;
    Alcotest.test_case "sdaccel: unsupported shapes" `Quick test_sdaccel_unsupported_shapes;
    Alcotest.test_case "sdaccel: failure-rate band" `Quick test_sdaccel_failure_rate_band;
    Alcotest.test_case "sdaccel: worse than flexcl" `Slow test_sdaccel_worse_than_flexcl;
    Alcotest.test_case "dse: default space shape" `Quick test_space_default_shape;
    Alcotest.test_case "dse: wg divisibility" `Quick test_space_respects_divisibility;
    Alcotest.test_case "dse: exhaustive sorted" `Quick test_exhaustive_sorted;
    Alcotest.test_case "dse: best beats default" `Quick test_best_beats_default;
    Alcotest.test_case "dse: greedy is no better" `Quick
      test_heuristic_not_better_than_exhaustive;
    Alcotest.test_case "dse: quality metric" `Quick test_quality_vs_optimal;
    Alcotest.test_case "dse: picked near optimum" `Slow test_flexcl_choice_near_true_optimum;
  ]

(* ------------------------------------------------------------------ *)
(* Ablation options and vectorization (appended suite) *)

let test_options_default_neutral () =
  (* estimate with explicit default options equals the plain estimate *)
  let a = Lazy.force analysis in
  let c = cfg ~pe:2 ~cu:2 ~pipe:true ~mode:Config.Pipeline_mode () in
  let plain = Model.estimate dev a c in
  let opt = Model.estimate ~options:Model.default_options dev a c in
  check (Alcotest.float 0.0) "identical" plain.Model.cycles opt.Model.cycles

let test_ablation_coalescing_matters () =
  (* disabling cross-WI coalescing inflates the memory estimate on a
     streaming kernel *)
  let a = Lazy.force analysis in
  let c = cfg ~pipe:true ~mode:Config.Pipeline_mode () in
  let on = Model.estimate dev a c in
  let off =
    Model.estimate
      ~options:{ Model.default_options with Model.cross_wi_coalescing = false }
      dev a c
  in
  check Alcotest.bool "uncoalesced memory costs more" true
    (off.Model.l_mem_wi > on.Model.l_mem_wi *. 1.5)

let test_ablation_warmup_matters () =
  (* a small resident buffer is all row-hits in steady state; a cold
     classification sees misses *)
  let launch =
    Launch.make ~global:(Launch.dim3 1024) ~local:(Launch.dim3 64)
      ~args:[ ("buf", Launch.Buffer { length = 1024; init = Launch.Zeros }) ]
  in
  let a =
    Analysis.of_source
      {|__kernel void memset(__global float* buf) {
          buf[get_global_id(0)] = 0.0f;
        }|}
      launch
  in
  let c = cfg () in
  let on = Model.estimate dev a c in
  let off =
    Model.estimate
      ~options:{ Model.default_options with Model.warm_classification = false }
      dev a c
  in
  let misses (b : Model.breakdown) =
    List.fold_left
      (fun acc ((p : Model.Dram.pattern), n) ->
        if p.Model.Dram.row_hit then acc else acc +. n)
      0.0 b.Model.pattern_counts
  in
  check Alcotest.bool "cold classification reports more misses" true
    (misses off > misses on)

let test_vectorization_acts_as_pe () =
  (* footnote 1: an N-wide vector PE behaves as N scalar PEs *)
  let a = Lazy.force analysis in
  let scalar = cfg ~pe:4 ~pipe:true ~mode:Config.Pipeline_mode () in
  let vec_opts = { Model.default_options with Model.vector_width = 4 } in
  let v = Model.estimate ~options:vec_opts dev a (cfg ~pe:1 ~pipe:true ~mode:Config.Pipeline_mode ()) in
  let s = Model.estimate dev a scalar in
  check (Alcotest.float 0.0) "vec4 x pe1 = pe4" s.Model.cycles v.Model.cycles

let ablation_suite =
  [
    Alcotest.test_case "options: defaults neutral" `Quick test_options_default_neutral;
    Alcotest.test_case "ablation: coalescing matters" `Quick
      test_ablation_coalescing_matters;
    Alcotest.test_case "ablation: warm-up matters" `Quick test_ablation_warmup_matters;
    Alcotest.test_case "vectorization: acts as PE parallelism" `Quick
      test_vectorization_acts_as_pe;
  ]

(* ------------------------------------------------------------------ *)
(* Multi-channel devices, the bandwidth roofline and buffer placement
   (DESIGN.md §15) *)

module Workload = Flexcl_workloads.Workload
module Dram = Flexcl_dram.Dram

let bits = Int64.bits_of_float
let multi_channel_devices = [ Device.ku060_2ddr; Device.u280 ]

let analysis_of name =
  let w = Gen.find_workload name in
  Analysis.of_source w.Workload.source w.Workload.launch

let round_robin (d : Device.t) (a : Analysis.t) =
  Analysis.with_placement a
    (Launch.round_robin_placement a.Analysis.launch
       ~n_channels:d.Device.dram.Dram.n_channels)

let test_hbm_devices_shape () =
  check Alcotest.int "u280 has 32 HBM2 channels" 32
    Device.u280.Device.dram.Dram.n_channels;
  check Alcotest.int "ku060-2ddr has 2 channels" 2
    Device.ku060_2ddr.Device.dram.Dram.n_channels;
  check Alcotest.int "virtex7 stays single-channel" 1
    dev.Device.dram.Dram.n_channels

let test_channel_counts_sum_to_aggregate () =
  List.iter
    (fun d ->
      List.iter
        (fun name ->
          let a = round_robin d (analysis_of name) in
          let total = Model.mean_pattern_counts a d in
          let by_chan = Model.mean_pattern_counts_by_channel a d in
          check Alcotest.int
            (name ^ ": one entry per channel")
            d.Device.dram.Dram.n_channels (Array.length by_chan);
          List.iter
            (fun (p, c) ->
              let summed =
                Array.fold_left
                  (fun acc counts -> acc +. List.assoc p counts)
                  0.0 by_chan
              in
              check
                (Alcotest.float 1e-9)
                (name ^ ": " ^ Dram.pattern_name p ^ " conserved")
                c summed)
            total)
        [ "bfs/bfs_1"; "mvt/mvt" ])
    multi_channel_devices

let test_channel_roofline_is_slowest_channel () =
  List.iter
    (fun d ->
      let a = round_robin d (analysis_of "bfs/bfs_1") in
      let n_wi_f = float_of_int (Launch.n_work_items a.Analysis.launch) in
      let demands = Model.channel_demands a d ~n_wi_f in
      let roof = Model.channel_roofline a d ~n_wi_f in
      check Alcotest.bool "roofline = max demand" true
        (bits roof = bits (Array.fold_left Float.max 0.0 demands));
      (* spreading traffic over channels only lowers the binding demand:
         the placed roofline never exceeds the all-on-channel-0 one *)
      let roof0 =
        Model.channel_roofline (analysis_of "bfs/bfs_1") d ~n_wi_f
      in
      check Alcotest.bool "round robin no worse than unplaced" true
        (roof <= roof0 +. 1e-9))
    multi_channel_devices

let test_lower_bound_sound_under_placement () =
  (* the 1/N_chan stream floor must stay below the estimate for every
     placement, the property the placement-aware DSE pruning rests on *)
  List.iter
    (fun d ->
      List.iter
        (fun name ->
          let a0 = analysis_of name in
          let candidates =
            Explore.placement_candidates a0
              ~n_channels:d.Device.dram.Dram.n_channels
          in
          List.iter
            (fun placement ->
              let a =
                if placement = [] then a0
                else Analysis.with_placement a0 placement
              in
              let c =
                cfg
                  ~wg:(Launch.wg_size a.Analysis.launch)
                  ~pe:2 ~cu:2 ~pipe:true ~mode:Config.Pipeline_mode ()
              in
              if Model.feasible d a c then
                let lb = Model.lower_bound d a c in
                let est = Model.cycles d a c in
                check Alcotest.bool
                  (Printf.sprintf "%s: bound %.0f <= est %.0f" name lb est)
                  true
                  (lb <= est +. (1e-9 *. Float.max est 1.0)))
            candidates)
        [ "bfs/bfs_1"; "mvt/mvt"; "gemm/gemm" ])
    multi_channel_devices

let test_zero_placement_is_identity () =
  (* binding every buffer to channel 0 (or placing on a 1-channel
     device) reproduces the unplaced estimate bitwise *)
  List.iter
    (fun d ->
      let a0 = analysis_of "bfs/bfs_1" in
      let zeros =
        List.map (fun b -> (b, 0)) (Launch.buffer_names a0.Analysis.launch)
      in
      let a = Analysis.with_placement a0 zeros in
      let c =
        cfg
          ~wg:(Launch.wg_size a0.Analysis.launch)
          ~pe:2 ~cu:2 ~pipe:true ~mode:Config.Pipeline_mode ()
      in
      check Alcotest.bool
        (d.Device.name ^ ": all-zeros placement is the identity")
        true
        (bits (Model.cycles d a0 c) = bits (Model.cycles d a c)))
    (dev :: multi_channel_devices)

let test_placed_strict_improvement () =
  (* acceptance: against the placed channel-accurate simulator, the
     channel-aware (placed) model strictly beats the channel-oblivious
     one for bfs and mvt on every multi-channel device. The design
     points are where each workload's memory behaviour is
     channel-sensitive: bfs (scattered reads over several buffers)
     improves at the suite's pe2/cu2 point; mvt (one dominant streamed
     matrix) needs concurrent CUs per memory channel, pe1/cu2. *)
  List.iter
    (fun (name, pe, cu) ->
      List.iter
        (fun d ->
          let a0 = analysis_of name in
          let ap = round_robin d a0 in
          let c =
            cfg
              ~wg:(Launch.wg_size a0.Analysis.launch)
              ~pe ~cu ~pipe:true ~mode:Config.Pipeline_mode ()
          in
          let sim = (Sysrun.run ~seed:42 d ap c).Sysrun.cycles in
          let placed_err =
            Stats.abs_pct_error ~actual:sim ~predicted:(Model.cycles d ap c)
          in
          let oblivious_err =
            Stats.abs_pct_error ~actual:sim ~predicted:(Model.cycles d a0 c)
          in
          check Alcotest.bool
            (Printf.sprintf "%s@%s: placed %.2f%% < oblivious %.2f%%" name
               d.Device.name placed_err oblivious_err)
            true
            (placed_err < oblivious_err))
        multi_channel_devices)
    [ ("bfs/bfs_1", 2, 2); ("mvt/mvt", 1, 2) ]

let test_explore_placements_differential () =
  (* the staged, pruned placement sweep ranks identically to the
     unstaged, unpruned reference — bitwise *)
  List.iter
    (fun d ->
      let a = analysis_of "bfs/bfs_1" in
      let n_wi = Launch.n_work_items a.Analysis.launch in
      let space =
        { (Space.default ~total_work_items:n_wi) with
          Space.pe_counts = [ 1; 2 ];
          cu_counts = [ 1; 2 ];
        }
      in
      let staged = Explore.explore_placements ~num_domains:0 d a space in
      let reference =
        Explore.explore_placements_reference ~num_domains:0 d a space
      in
      check Alcotest.int
        (d.Device.name ^ ": same candidate count")
        (List.length reference) (List.length staged);
      List.iter2
        (fun (s : Explore.placed) (r : Explore.placed) ->
          check Alcotest.bool "same placement" true
            (s.Explore.placement = r.Explore.placement);
          check Alcotest.bool "same config" true
            (s.Explore.best_point.Explore.config
            = r.Explore.best_point.Explore.config);
          check Alcotest.bool "bitwise cycles" true
            (bits s.Explore.best_point.Explore.cycles
            = bits r.Explore.best_point.Explore.cycles))
        staged reference)
    (dev :: multi_channel_devices)

let test_placement_candidates_shape () =
  let a = Lazy.force analysis in
  check Alcotest.bool "1-channel space is the empty placement" true
    (Explore.placement_candidates a ~n_channels:1 = [ [] ]);
  let cands = Explore.placement_candidates a ~n_channels:4 in
  check Alcotest.bool "empty placement first" true (List.hd cands = []);
  let buffers = Launch.buffer_names a.Analysis.launch in
  List.iter
    (fun p ->
      List.iter
        (fun (b, chan) ->
          check Alcotest.bool "names a kernel buffer" true (List.mem b buffers);
          check Alcotest.bool "channel in range" true (chan >= 0 && chan < 4))
        p)
    cands;
  check Alcotest.bool "no duplicate candidates" true
    (List.length (List.sort_uniq compare cands) = List.length cands)

let hbm_suite =
  [
    Alcotest.test_case "hbm: device shapes" `Quick test_hbm_devices_shape;
    Alcotest.test_case "hbm: per-channel counts conserve" `Quick
      test_channel_counts_sum_to_aggregate;
    Alcotest.test_case "hbm: roofline is the slowest channel" `Quick
      test_channel_roofline_is_slowest_channel;
    Alcotest.test_case "hbm: lower bound sound under placement" `Quick
      test_lower_bound_sound_under_placement;
    Alcotest.test_case "hbm: zero placement identity (bitwise)" `Quick
      test_zero_placement_is_identity;
    Alcotest.test_case "hbm: placed model beats oblivious (bfs, mvt)" `Slow
      test_placed_strict_improvement;
    Alcotest.test_case "hbm: placement sweep differential (bitwise)" `Slow
      test_explore_placements_differential;
    Alcotest.test_case "hbm: placement candidate shape" `Quick
      test_placement_candidates_shape;
  ]

let suite = suite @ ablation_suite @ hbm_suite
