let () =
  Alcotest.run "flexcl"
    [ ("util", Test_util.suite); ("opencl", Test_opencl.suite); ("ir", Test_ir.suite); ("sched", Test_sched.suite); ("interp", Test_interp.suite); ("dram", Test_dram.suite); ("model", Test_model.suite); ("trace", Test_trace.suite); ("graph", Test_graph.suite); ("workloads", Test_workloads.suite); ("robustness", Test_robustness.suite); ("parsweep", Test_parsweep.suite); ("specialize", Test_specialize.suite); ("goldens", Test_goldens.suite); ("server", Test_server.suite); ("suite", Test_suite.suite); ("learn", Test_learn.suite) ]
