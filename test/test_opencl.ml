(* Frontend tests: lexer, parser, types, builtins, semantic analysis. *)

open Flexcl_opencl

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Types *)

let test_type_names () =
  check Alcotest.bool "int" true (Types.of_name "int" = Some (Types.Scalar Types.Int));
  check Alcotest.bool "float4" true
    (Types.of_name "float4" = Some (Types.Vector (Types.Float, 4)));
  check Alcotest.bool "float16" true
    (Types.of_name "float16" = Some (Types.Vector (Types.Float, 16)));
  check Alcotest.bool "unknown" true (Types.of_name "floatx" = None);
  check Alcotest.bool "void" true (Types.of_name "void" = Some Types.Void)

let test_type_bits () =
  check Alcotest.int "int" 32 (Types.bits (Types.Scalar Types.Int));
  check Alcotest.int "float4" 128 (Types.bits (Types.Vector (Types.Float, 4)));
  check Alcotest.int "array" (32 * 10)
    (Types.bits (Types.Array (Types.Scalar Types.Float, 10)));
  check Alcotest.int "ptr" 64 (Types.bits (Types.Ptr (Types.Global, Types.Scalar Types.Char)))

let test_arith_result () =
  check Alcotest.bool "int+float" true
    (Types.arith_result Types.Int Types.Float = Types.Float);
  check Alcotest.bool "char+int" true (Types.arith_result Types.Char Types.Int = Types.Int);
  check Alcotest.bool "int+uint" true (Types.arith_result Types.Int Types.Uint = Types.Uint)

let test_addr_space () =
  let t = Types.Ptr (Types.Global, Types.Scalar Types.Float) in
  check Alcotest.bool "global ptr" true (Types.addr_space_of t = Some Types.Global);
  check Alcotest.bool "scalar none" true
    (Types.addr_space_of (Types.Scalar Types.Int) = None)

let test_elem () =
  check Alcotest.bool "ptr elem" true
    (Types.elem (Types.Ptr (Types.Local, Types.Scalar Types.Int)) = Types.Scalar Types.Int);
  check Alcotest.bool "2d array elem" true
    (Types.elem (Types.Array (Types.Array (Types.Scalar Types.Float, 4), 4))
    = Types.Array (Types.Scalar Types.Float, 4))

(* ------------------------------------------------------------------ *)
(* Lexer *)

let toks src = List.map (fun l -> l.Token.tok) (Lexer.tokenize src)

let test_lex_operators () =
  check Alcotest.bool "shift vs compare" true
    (toks "a << b <= c <<= d"
    = [ Token.Ident "a"; Token.Shl; Token.Ident "b"; Token.Le; Token.Ident "c";
        Token.Shl_assign; Token.Ident "d"; Token.Eof ])

let test_lex_numbers () =
  check Alcotest.bool "int" true (toks "42" = [ Token.Int_lit 42L; Token.Eof ]);
  check Alcotest.bool "hex" true (toks "0xff" = [ Token.Int_lit 255L; Token.Eof ]);
  (match toks "3.5f" with
  | [ Token.Float_lit f; Token.Eof ] -> check (Alcotest.float 1e-9) "float" 3.5 f
  | _ -> Alcotest.fail "expected float");
  match toks "1e3" with
  | [ Token.Float_lit f; Token.Eof ] -> check (Alcotest.float 1e-9) "exponent" 1000.0 f
  | _ -> Alcotest.fail "expected float with exponent"

let test_lex_comments () =
  check Alcotest.bool "line comment" true (toks "a // comment\n b" = toks "a b");
  check Alcotest.bool "block comment" true (toks "a /* x */ b" = toks "a b")

let test_lex_unterminated_comment () =
  match Lexer.tokenize "a /* never ends" with
  | exception Lexer.Error (_, _, _) -> ()
  | _ -> Alcotest.fail "expected lexer error"

let test_lex_pragma () =
  match toks "#pragma unroll 4\nx" with
  | [ Token.Pragma [ "unroll"; "4" ]; Token.Ident "x"; Token.Eof ] -> ()
  | _ -> Alcotest.fail "pragma not lexed"

let test_lex_keywords () =
  check Alcotest.bool "kernel kw" true (toks "__kernel" = [ Token.Kw_kernel; Token.Eof ]);
  check Alcotest.bool "both spellings" true (toks "kernel" = [ Token.Kw_kernel; Token.Eof ]);
  check Alcotest.bool "positions" true
    (match Lexer.tokenize "\n  x" with
    | [ { Token.line = 2; col = 3; _ }; _ ] -> true
    | _ -> false)

let test_lex_bad_char () =
  match Lexer.tokenize "a $ b" with
  | exception Lexer.Error (_, 1, _) -> ()
  | _ -> Alcotest.fail "expected error on '$'"

(* ------------------------------------------------------------------ *)
(* Parser: expressions *)

let test_parse_precedence () =
  check Alcotest.string "mul binds tighter" "(a + (b * c))"
    (Ast.expr_to_string (Parser.parse_expr "a + b * c"));
  check Alcotest.string "shift vs add" "((a + b) << c)"
    (Ast.expr_to_string (Parser.parse_expr "a + b << c"));
  check Alcotest.string "comparison chain" "((a < b) == (c > d))"
    (Ast.expr_to_string (Parser.parse_expr "a < b == c > d"));
  check Alcotest.string "logic" "(a || (b && c))"
    (Ast.expr_to_string (Parser.parse_expr "a || b && c"))

let test_parse_unary () =
  check Alcotest.string "neg" "(-a * b)" (Ast.expr_to_string (Parser.parse_expr "-a * b"));
  check Alcotest.string "not" "(!a && b)" (Ast.expr_to_string (Parser.parse_expr "!a && b"))

let test_parse_ternary () =
  check Alcotest.string "ternary" "(a ? b : (c ? d : e))"
    (Ast.expr_to_string (Parser.parse_expr "a ? b : c ? d : e"))

let test_parse_cast () =
  match Parser.parse_expr "(float)x" with
  | Ast.Cast (Types.Scalar Types.Float, Ast.Var "x") -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.expr_to_string e)

let test_parse_paren_not_cast () =
  (* (x) + y where x is a plain variable must stay an addition *)
  match Parser.parse_expr "(x) + y" with
  | Ast.Binop (Ast.Add, Ast.Var "x", Ast.Var "y") -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.expr_to_string e)

let test_parse_call_and_index () =
  match Parser.parse_expr "a[get_global_id(0) + 1]" with
  | Ast.Index (Ast.Var "a", [ Ast.Binop (Ast.Add, Ast.Call ("get_global_id", _), _) ]) ->
      ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.expr_to_string e)

let test_parse_multidim_index () =
  match Parser.parse_expr "t[i][j]" with
  | Ast.Index (Ast.Var "t", [ Ast.Var "i"; Ast.Var "j" ]) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.expr_to_string e)

(* ------------------------------------------------------------------ *)
(* Parser: kernels *)

let parse1 src = Parser.parse_kernel src

let test_parse_minimal_kernel () =
  let k = parse1 "__kernel void f(__global float* a) { a[0] = 1.0f; }" in
  check Alcotest.string "name" "f" k.Ast.k_name;
  check Alcotest.int "params" 1 (List.length k.Ast.k_params)

let test_parse_param_spaces () =
  let k =
    parse1
      "__kernel void f(__global float* a, __local int* b, __constant float* c, int n) {}"
  in
  let spaces =
    List.map (fun p -> Types.addr_space_of p.Ast.p_type) k.Ast.k_params
  in
  check Alcotest.bool "spaces" true
    (spaces = [ Some Types.Global; Some Types.Local; Some Types.Constant; None ])

let test_parse_const_param () =
  let k = parse1 "__kernel void f(__global const float* a) {}" in
  match k.Ast.k_params with
  | [ p ] -> check Alcotest.bool "const" true p.Ast.p_const
  | _ -> Alcotest.fail "one param"

let test_parse_reqd_wg_size () =
  let k =
    parse1
      "__kernel __attribute__((reqd_work_group_size(16, 8, 1))) void f(int n) {}"
  in
  check Alcotest.bool "attribute" true
    (k.Ast.k_attrs.Ast.reqd_work_group_size = Some (16, 8, 1))

let test_parse_wi_pipeline_pragma () =
  let k = parse1 "#pragma work_item_pipeline\n__kernel void f(int n) {}" in
  check Alcotest.bool "pipeline attr" true k.Ast.k_attrs.Ast.work_item_pipeline

let test_parse_loop_pragmas () =
  let k =
    parse1
      {|__kernel void f(__global float* a) {
          #pragma unroll 4
          for (int i = 0; i < 16; i++) { a[i] = 0.0f; }
          #pragma pipeline
          for (int j = 0; j < 16; j++) { a[j] = 1.0f; }
        }|}
  in
  let loops = ref [] in
  Ast.iter_stmts
    (fun s -> match s with Ast.For (_, _, at) -> loops := at :: !loops | _ -> ())
    k.Ast.k_body;
  match List.rev !loops with
  | [ a1; a2 ] ->
      check Alcotest.bool "unroll 4" true (a1.Ast.unroll = Some 4);
      check Alcotest.bool "pipeline" true a2.Ast.pipeline
  | _ -> Alcotest.fail "two loops expected"

let test_parse_barrier_statement () =
  let k =
    parse1
      {|__kernel void f(__global float* a) {
          barrier(CLK_LOCAL_MEM_FENCE);
        }|}
  in
  check Alcotest.bool "barrier stmt" true
    (match k.Ast.k_body with [ Ast.Barrier ] -> true | _ -> false)

let test_parse_local_decl () =
  let k =
    parse1 {|__kernel void f(int n) { __local float tile[16][17]; }|}
  in
  match k.Ast.k_body with
  | [ Ast.Local_decl (Types.Array (Types.Array (Types.Scalar Types.Float, 17), 16), "tile") ] ->
      ()
  | _ -> Alcotest.fail "local array decl shape"

let test_parse_compound_assign () =
  let k = parse1 {|__kernel void f(__global int* a) { a[0] += 2; }|} in
  match k.Ast.k_body with
  | [ Ast.Assign (Ast.Lindex ("a", _), Ast.Binop (Ast.Add, Ast.Index _, Ast.Int_lit 2L)) ]
    ->
      ()
  | _ -> Alcotest.fail "compound assignment desugaring"

let test_parse_increment_forms () =
  let k =
    parse1
      {|__kernel void f(int n) {
          int i = 0;
          i++;
          ++i;
          i--;
        }|}
  in
  let assigns =
    List.filter (function Ast.Assign _ -> true | _ -> false) k.Ast.k_body
  in
  check Alcotest.int "three increments" 3 (List.length assigns)

let test_parse_if_else () =
  let k =
    parse1
      {|__kernel void f(__global int* a, int n) {
          int g = get_global_id(0);
          if (g < n) { a[g] = 1; } else { a[g] = 2; }
        }|}
  in
  check Alcotest.bool "if stmt present" true
    (List.exists (function Ast.If _ -> true | _ -> false) k.Ast.k_body)

let test_parse_while () =
  let k =
    parse1
      {|__kernel void f(int n) {
          int i = 0;
          while (i < n) { i = i + 1; }
        }|}
  in
  check Alcotest.bool "while present" true
    (List.exists (function Ast.While _ -> true | _ -> false) k.Ast.k_body)

let test_parse_multi_declarator () =
  let k = parse1 {|__kernel void f(int n) { int i = 0, j = 1; }|} in
  let decls = List.filter (function Ast.Decl _ -> true | _ -> false) k.Ast.k_body in
  check Alcotest.int "two decls" 2 (List.length decls)

let test_parse_errors () =
  let expect_error src =
    match Parser.parse_program src with
    | exception Parser.Error (_, _, _) -> ()
    | exception Lexer.Error (_, _, _) -> ()
    | _ -> Alcotest.failf "expected syntax error for %S" src
  in
  expect_error "__kernel void f( { }";
  expect_error "__kernel int f(int n) {}";
  expect_error "__kernel void f(int n) { if }";
  expect_error "void f() {}";
  expect_error "__kernel void f(int n) { int x = ; }"

let test_parse_program_multiple () =
  let ks =
    Parser.parse_program
      "__kernel void f(int n) {} __kernel void g(int n) {}"
  in
  check Alcotest.int "two kernels" 2 (List.length ks)

let test_parse_kernel_rejects_many () =
  match Parser.parse_kernel "__kernel void f(int n) {} __kernel void g(int n) {}" with
  | exception Parser.Error (_, _, _) -> ()
  | _ -> Alcotest.fail "expected error for two kernels"

(* ------------------------------------------------------------------ *)
(* Builtins *)

let test_builtin_lookup () =
  check Alcotest.bool "sqrt" true (Builtins.find "sqrt" = Some (Builtins.Math1 Builtins.Sqrt));
  check Alcotest.bool "native alias" true
    (Builtins.find "native_sqrt" = Some (Builtins.Math1 Builtins.Sqrt));
  check Alcotest.bool "unknown" true (Builtins.find "frobnicate" = None)

let test_builtin_result_types () =
  let f = Types.Scalar Types.Float and i = Types.Scalar Types.Int in
  check Alcotest.bool "wi returns int" true
    (Builtins.result_type (Builtins.Wi Builtins.Get_global_id) [ i ] = Ok i);
  check Alcotest.bool "sqrt float" true
    (Builtins.result_type (Builtins.Math1 Builtins.Sqrt) [ f ] = Ok f);
  check Alcotest.bool "max promotes" true
    (Builtins.result_type (Builtins.Math2 Builtins.Max) [ i; f ] = Ok f);
  check Alcotest.bool "arity error" true
    (match Builtins.result_type (Builtins.Math2 Builtins.Pow) [ f ] with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Sema *)

let analyze src = Sema.analyze (parse1 src)

let test_sema_collects_arrays () =
  let info =
    analyze
      {|__kernel void f(__global float* a, __local float* l, int n) {
          __local int scratch[64];
          a[0] = 0.0f;
        }|}
  in
  check Alcotest.int "globals" 1 (List.length info.Sema.global_arrays);
  check Alcotest.int "locals" 2 (List.length info.Sema.local_arrays)

let test_sema_barrier_flag () =
  let info =
    analyze {|__kernel void f(int n) { barrier(CLK_LOCAL_MEM_FENCE); }|}
  in
  check Alcotest.bool "uses barrier" true info.Sema.uses_barrier

let test_sema_loop_stats () =
  let info =
    analyze
      {|__kernel void f(int n) {
          for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) { int x = i + j; }
          }
          while (n > 0) { n = n - 1; }
        }|}
  in
  check Alcotest.int "loops" 3 info.Sema.n_loops;
  check Alcotest.int "depth" 2 info.Sema.max_loop_depth

let expect_sema_error src =
  match analyze src with
  | exception Sema.Error _ -> ()
  | _ -> Alcotest.failf "expected sema error for %S" src

let test_sema_unknown_var () =
  expect_sema_error {|__kernel void f(int n) { int x = y; }|}

let test_sema_unknown_function () =
  expect_sema_error {|__kernel void f(int n) { int x = mystery(n); }|}

let test_sema_too_many_subscripts () =
  expect_sema_error {|__kernel void f(__global float* a) { float x = a[0][1]; }|}

let test_sema_const_assignment () =
  expect_sema_error
    {|__kernel void f(__global const float* a) { a[0] = 1.0f; }|}

let test_sema_bitwise_float () =
  expect_sema_error {|__kernel void f(float x) { float y = x & 1.0f; }|}

let test_sema_mod_float () =
  expect_sema_error {|__kernel void f(float x) { float y = x % 2.0f; }|}

let test_sema_arity () =
  expect_sema_error {|__kernel void f(float x) { float y = pow(x); }|}

let test_sema_redeclare_conflicting () =
  expect_sema_error {|__kernel void f(int n) { int i = 0; float i = 1.0f; }|}

let test_sema_type_of () =
  let k =
    parse1
      {|__kernel void f(__global float* a, int n) {
          float x = a[n] + 1.0f;
        }|}
  in
  let info = Sema.analyze k in
  check Alcotest.bool "load elem type" true
    (Sema.type_of info (Parser.parse_expr "a[0]") = Types.Scalar Types.Float);
  check Alcotest.bool "compare yields int" true
    (Sema.type_of info (Parser.parse_expr "n < 3") = Types.Scalar Types.Int)

let test_const_eval () =
  check Alcotest.bool "fold" true (Sema.const_eval (Parser.parse_expr "2 * 3 + 4") = Some 10L);
  check Alcotest.bool "shift" true (Sema.const_eval (Parser.parse_expr "1 << 4") = Some 16L);
  check Alcotest.bool "div by zero" true (Sema.const_eval (Parser.parse_expr "1 / 0") = None);
  check Alcotest.bool "non-const" true (Sema.const_eval (Parser.parse_expr "x + 1") = None);
  check Alcotest.bool "ternary" true (Sema.const_eval (Parser.parse_expr "1 ? 7 : 9") = Some 7L)

(* ------------------------------------------------------------------ *)
(* Pipes and structural discipline: directions are inferred, and uses
   that the hardware mapping cannot honor — pipe traffic or barriers
   under divergent control flow, pipe accesses buried inside larger
   expressions — are rejected with a spanned [Error_at], not accepted
   silently. *)

let expect_error_at label src =
  match analyze src with
  | _ -> Alcotest.failf "%s: accepted invalid kernel" label
  | exception Sema.Error_at (msg, line, col) ->
      check Alcotest.bool (label ^ ": span is positive") true (line > 0 && col >= 0);
      msg

let test_sema_pipe_endpoints () =
  let info =
    analyze
      {|__kernel void f(pipe float inp, pipe float outp, __global float* a) {
          float v = read_pipe(inp);
          write_pipe(outp, v * 2.0f);
        }|}
  in
  check Alcotest.int "two pipes" 2 (List.length info.Sema.pipes);
  let ep name = List.assoc name info.Sema.pipes in
  check Alcotest.bool "inp reads" true (ep "inp").Sema.pe_reads;
  check Alcotest.bool "inp does not write" false (ep "inp").Sema.pe_writes;
  check Alcotest.bool "outp writes" true (ep "outp").Sema.pe_writes;
  check Alcotest.bool "outp does not read" false (ep "outp").Sema.pe_reads;
  check Alcotest.bool "packet type" true ((ep "inp").Sema.pe_packet = Types.Float)

let test_sema_barrier_diverged () =
  let msg =
    expect_error_at "barrier under if"
      {|__kernel void f(__global float* a, int n) {
          int gid = get_global_id(0);
          if (gid < n) {
            barrier(CLK_LOCAL_MEM_FENCE);
          }
        }|}
  in
  check Alcotest.bool "message names divergence" true
    (Thelpers.contains msg "diverged")

let test_sema_pipe_read_diverged () =
  let msg =
    expect_error_at "read_pipe under if"
      {|__kernel void f(pipe float p, __global float* a, int n) {
          int gid = get_global_id(0);
          float v = 0.0f;
          if (gid < n) {
            v = read_pipe(p);
          }
          a[gid] = v;
        }|}
  in
  check Alcotest.bool "message names divergence" true
    (Thelpers.contains msg "diverged")

let test_sema_pipe_write_diverged () =
  let msg =
    expect_error_at "write_pipe under else"
      {|__kernel void f(pipe float p, int n) {
          int gid = get_global_id(0);
          if (gid < n) {
            int x = gid;
          } else {
            write_pipe(p, 1.0f);
          }
        }|}
  in
  check Alcotest.bool "message names divergence" true
    (Thelpers.contains msg "diverged")

let test_sema_pipe_buried_expression () =
  let msg =
    expect_error_at "read_pipe inside larger expression"
      {|__kernel void f(pipe float p, __global float* a) {
          int gid = get_global_id(0);
          a[gid] = read_pipe(p) + 1.0f;
        }|}
  in
  check Alcotest.bool "message demands whole statement" true
    (Thelpers.contains msg "whole statement")

let test_sema_pipe_top_level_ok () =
  (* the same accesses at top level are fine — the divergence rule must
     not overreach (loops are uniform here, only [if] diverges) *)
  let info =
    analyze
      {|__kernel void f(pipe float p, pipe float q) {
          float v = read_pipe(p);
          float acc = 0.0f;
          for (int i = 0; i < 4; i++) {
            acc = acc + v;
          }
          write_pipe(q, acc);
        }|}
  in
  check Alcotest.int "pipes collected" 2 (List.length info.Sema.pipes)

let test_parse_pipe_param_only () =
  (* [pipe] is a parameter qualifier, not a local declaration type *)
  (match
     Parser.parse_program {|__kernel void f(int n) { pipe float p; }|}
   with
  | exception Parser.Error (_, _, _) -> ()
  | exception Lexer.Error (_, _, _) -> ()
  | _ -> Alcotest.fail "pipe local declaration must not parse");
  let k = parse1 {|__kernel void f(pipe float p) { write_pipe(p, 1.0f); }|} in
  check Alcotest.int "one param" 1 (List.length k.Ast.k_params)

(* ------------------------------------------------------------------ *)
(* qcheck: lexer totality on printable strings, parser on generated exprs *)

let gen_expr =
  (* random arithmetic expression over a, b and literals *)
  let open QCheck.Gen in
  let rec expr n =
    if n <= 0 then oneof [ return "a"; return "b"; map string_of_int (int_range 0 99) ]
    else
      oneof
        [
          (let* l = expr (n / 2) in
           let* r = expr (n / 2) in
           let* op = oneofl [ "+"; "-"; "*"; "/"; "&&"; "<"; "|" ] in
           return (Printf.sprintf "(%s %s %s)" l op r));
          expr 0;
        ]
  in
  expr 4

let prop_parser_roundtrip_structure =
  QCheck.Test.make ~name:"generated expressions parse and reprint stably" ~count:300
    (QCheck.make gen_expr)
    (fun src ->
      let e = Parser.parse_expr src in
      let printed = Ast.expr_to_string e in
      (* reparsing the printed form yields the same tree *)
      Parser.parse_expr printed = e)

let prop_lexer_never_loops =
  QCheck.Test.make ~name:"lexer terminates on identifier soup" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 30) (QCheck.make Gen.(oneofl [ "x"; "42"; "+"; "("; ")"; "<"; "<<" ])))
    (fun words ->
      let src = String.concat " " words in
      match Lexer.tokenize src with
      | toks -> List.length toks >= 1)

let suite =
  [
    Alcotest.test_case "types: names" `Quick test_type_names;
    Alcotest.test_case "types: bit widths" `Quick test_type_bits;
    Alcotest.test_case "types: arithmetic conversions" `Quick test_arith_result;
    Alcotest.test_case "types: address spaces" `Quick test_addr_space;
    Alcotest.test_case "types: element types" `Quick test_elem;
    Alcotest.test_case "lexer: operators" `Quick test_lex_operators;
    Alcotest.test_case "lexer: numbers" `Quick test_lex_numbers;
    Alcotest.test_case "lexer: comments" `Quick test_lex_comments;
    Alcotest.test_case "lexer: unterminated comment" `Quick test_lex_unterminated_comment;
    Alcotest.test_case "lexer: pragma" `Quick test_lex_pragma;
    Alcotest.test_case "lexer: keywords and positions" `Quick test_lex_keywords;
    Alcotest.test_case "lexer: bad character" `Quick test_lex_bad_char;
    Alcotest.test_case "parser: precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parser: unary" `Quick test_parse_unary;
    Alcotest.test_case "parser: ternary" `Quick test_parse_ternary;
    Alcotest.test_case "parser: cast" `Quick test_parse_cast;
    Alcotest.test_case "parser: paren is not cast" `Quick test_parse_paren_not_cast;
    Alcotest.test_case "parser: call and index" `Quick test_parse_call_and_index;
    Alcotest.test_case "parser: multi-dim index" `Quick test_parse_multidim_index;
    Alcotest.test_case "parser: minimal kernel" `Quick test_parse_minimal_kernel;
    Alcotest.test_case "parser: parameter spaces" `Quick test_parse_param_spaces;
    Alcotest.test_case "parser: const parameter" `Quick test_parse_const_param;
    Alcotest.test_case "parser: reqd_work_group_size" `Quick test_parse_reqd_wg_size;
    Alcotest.test_case "parser: work_item_pipeline pragma" `Quick
      test_parse_wi_pipeline_pragma;
    Alcotest.test_case "parser: loop pragmas" `Quick test_parse_loop_pragmas;
    Alcotest.test_case "parser: barrier statement" `Quick test_parse_barrier_statement;
    Alcotest.test_case "parser: local array decl" `Quick test_parse_local_decl;
    Alcotest.test_case "parser: compound assignment" `Quick test_parse_compound_assign;
    Alcotest.test_case "parser: increment forms" `Quick test_parse_increment_forms;
    Alcotest.test_case "parser: if/else" `Quick test_parse_if_else;
    Alcotest.test_case "parser: while" `Quick test_parse_while;
    Alcotest.test_case "parser: multiple declarators" `Quick test_parse_multi_declarator;
    Alcotest.test_case "parser: syntax errors" `Quick test_parse_errors;
    Alcotest.test_case "parser: multiple kernels" `Quick test_parse_program_multiple;
    Alcotest.test_case "parser: parse_kernel arity" `Quick test_parse_kernel_rejects_many;
    Alcotest.test_case "builtins: lookup" `Quick test_builtin_lookup;
    Alcotest.test_case "builtins: result types" `Quick test_builtin_result_types;
    Alcotest.test_case "sema: array collection" `Quick test_sema_collects_arrays;
    Alcotest.test_case "sema: barrier flag" `Quick test_sema_barrier_flag;
    Alcotest.test_case "sema: loop statistics" `Quick test_sema_loop_stats;
    Alcotest.test_case "sema: unknown variable" `Quick test_sema_unknown_var;
    Alcotest.test_case "sema: unknown function" `Quick test_sema_unknown_function;
    Alcotest.test_case "sema: over-subscripting" `Quick test_sema_too_many_subscripts;
    Alcotest.test_case "sema: const assignment" `Quick test_sema_const_assignment;
    Alcotest.test_case "sema: bitwise float" `Quick test_sema_bitwise_float;
    Alcotest.test_case "sema: float modulo" `Quick test_sema_mod_float;
    Alcotest.test_case "sema: builtin arity" `Quick test_sema_arity;
    Alcotest.test_case "sema: conflicting redeclaration" `Quick
      test_sema_redeclare_conflicting;
    Alcotest.test_case "sema: type_of" `Quick test_sema_type_of;
    Alcotest.test_case "sema: const_eval" `Quick test_const_eval;
    Alcotest.test_case "sema: pipe endpoint directions" `Quick test_sema_pipe_endpoints;
    Alcotest.test_case "sema: barrier in diverged flow" `Quick
      test_sema_barrier_diverged;
    Alcotest.test_case "sema: pipe read in diverged flow" `Quick
      test_sema_pipe_read_diverged;
    Alcotest.test_case "sema: pipe write in diverged flow" `Quick
      test_sema_pipe_write_diverged;
    Alcotest.test_case "sema: pipe access buried in expression" `Quick
      test_sema_pipe_buried_expression;
    Alcotest.test_case "sema: pipes at top level accepted" `Quick
      test_sema_pipe_top_level_ok;
    Alcotest.test_case "parser: pipe is parameter-only" `Quick
      test_parse_pipe_param_only;
    QCheck_alcotest.to_alcotest prop_parser_roundtrip_structure;
    QCheck_alcotest.to_alcotest prop_lexer_never_loops;
  ]
