(* IR tests: launch configs, lowering, CDFG structure, trip counts and
   dependence analysis. *)

open Flexcl_opencl
open Flexcl_ir

let check = Alcotest.check

let launch ?(global = 256) ?(wg = 64) ?(args = []) () =
  Launch.make ~global:(Launch.dim3 global) ~local:(Launch.dim3 wg)
    ~args:(args @ [ ("n", Launch.Scalar (Launch.Int 256L)) ])

let lower_src ?launch:(l = launch ()) src =
  let k = Parser.parse_kernel src in
  let info = Sema.analyze k in
  (Lower.lower k info l, info)

(* ------------------------------------------------------------------ *)
(* Launch *)

let test_launch_validation () =
  Alcotest.check_raises "wg must divide"
    (Invalid_argument "Launch.make: local.x = 48 does not divide global.x = 256")
    (fun () ->
      ignore (Launch.make ~global:(Launch.dim3 256) ~local:(Launch.dim3 48) ~args:[]))

let test_launch_counts () =
  let l =
    Launch.make ~global:(Launch.dim3 ~y:8 64) ~local:(Launch.dim3 ~y:2 16) ~args:[]
  in
  check Alcotest.int "work items" 512 (Launch.n_work_items l);
  check Alcotest.int "wg size" 32 (Launch.wg_size l);
  check Alcotest.int "work groups" 16 (Launch.n_work_groups l);
  check Alcotest.int "wg list" 16 (List.length (Launch.work_groups l));
  check Alcotest.int "lid list" 32 (List.length (Launch.local_ids l))

let test_launch_scalar_env () =
  let l = launch () in
  check Alcotest.bool "n visible" true (List.assoc_opt "n" (Launch.scalar_env l) = Some 256L)

(* ------------------------------------------------------------------ *)
(* Static evaluation / trip counts *)

let test_eval_static () =
  let l = launch () in
  let ev e = Lower.eval_static l ~env:[] (Parser.parse_expr e) in
  check Alcotest.bool "const" true (ev "3 * 4" = Some 12L);
  check Alcotest.bool "scalar arg" true (ev "n / 2" = Some 128L);
  check Alcotest.bool "local size" true (ev "get_local_size(0)" = Some 64L);
  check Alcotest.bool "global size" true (ev "get_global_size(0)" = Some 256L);
  check Alcotest.bool "num groups" true (ev "get_num_groups(0)" = Some 4L);
  check Alcotest.bool "gid is dynamic" true (ev "get_global_id(0)" = None)

let trips_of src =
  let cdfg, _ = lower_src src in
  Cdfg.fold_loops (fun acc info -> info.Cdfg.static_trip :: acc) [] cdfg.Cdfg.body
  |> List.rev

let test_static_trip_simple () =
  check Alcotest.bool "0..16" true
    (trips_of "__kernel void f(int n) { for (int i = 0; i < 16; i++) { int x = i; } }"
    = [ Some 16 ])

let test_static_trip_le () =
  check Alcotest.bool "<= bound" true
    (trips_of "__kernel void f(int n) { for (int i = 0; i <= 16; i++) { int x = i; } }"
    = [ Some 17 ])

let test_static_trip_stride () =
  check Alcotest.bool "stride 3" true
    (trips_of "__kernel void f(int n) { for (int i = 0; i < 16; i += 3) { int x = i; } }"
    = [ Some 6 ])

let test_static_trip_down () =
  check Alcotest.bool "countdown" true
    (trips_of "__kernel void f(int n) { for (int i = 10; i > 0; i -= 2) { int x = i; } }"
    = [ Some 5 ])

let test_static_trip_scalar_arg () =
  check Alcotest.bool "bound from arg" true
    (trips_of "__kernel void f(int n) { for (int i = 0; i < n; i++) { int x = i; } }"
    = [ Some 256 ])

let test_static_trip_wi_size () =
  check Alcotest.bool "bound from get_local_size" true
    (trips_of
       "__kernel void f(int n) { for (int i = 0; i < get_local_size(0); i++) { int x = i; } }"
    = [ Some 64 ])

let test_static_trip_dynamic () =
  check Alcotest.bool "gid-dependent start is dynamic" true
    (trips_of
       "__kernel void f(int n) { for (int i = get_global_id(0); i < n; i++) { int x = i; } }"
    = [ None ])

let test_while_has_no_static_trip () =
  check Alcotest.bool "while" true
    (trips_of "__kernel void f(int n) { while (n > 0) { n = n - 1; } }" = [ None ])

(* ------------------------------------------------------------------ *)
(* Lowering / CDFG structure *)

let blocks_of region = Cdfg.fold_blocks (fun acc d -> d :: acc) [] region

let test_lower_straight_merge () =
  (* consecutive simple statements form one block *)
  let cdfg, _ =
    lower_src
      {|__kernel void f(__global float* a, int n) {
          int g = get_global_id(0);
          float x = a[g];
          float y = x * 2.0f;
          a[g] = y;
        }|}
  in
  match cdfg.Cdfg.body with
  | Cdfg.Seq [ Cdfg.Straight _ ] -> ()
  | r -> Alcotest.failf "expected one straight block, got %s"
           (Format.asprintf "%a" Cdfg.pp_region r)

let test_lower_loop_structure () =
  let cdfg, _ =
    lower_src
      {|__kernel void f(__global float* a, int n) {
          float s = 0.0f;
          for (int i = 0; i < 8; i++) { s += a[i]; }
          a[0] = s;
        }|}
  in
  check Alcotest.int "one loop" 1 cdfg.Cdfg.n_loops;
  (* the preamble block may be empty (constant-only) and elided *)
  match cdfg.Cdfg.body with
  | Cdfg.Seq [ Cdfg.Loop { info; _ }; Cdfg.Straight _ ]
  | Cdfg.Seq [ Cdfg.Straight _; Cdfg.Loop { info; _ }; Cdfg.Straight _ ] ->
      check Alcotest.bool "loop var" true (info.Cdfg.var = Some "i");
      check Alcotest.bool "trip" true (info.Cdfg.static_trip = Some 8)
  | r -> Alcotest.failf "unexpected region %s" (Format.asprintf "%a" Cdfg.pp_region r)

let test_lower_branch_structure () =
  let cdfg, _ =
    lower_src
      {|__kernel void f(__global int* a, int n) {
          int g = get_global_id(0);
          if (g < n) { a[g] = 1; } else { a[g] = 2; }
        }|}
  in
  let has_branch =
    let rec walk = function
      | Cdfg.Branch _ -> true
      | Cdfg.Seq rs -> List.exists walk rs
      | Cdfg.Loop { body; _ } -> walk body
      | Cdfg.Straight _ -> false
    in
    walk cdfg.Cdfg.body
  in
  check Alcotest.bool "branch region" true has_branch

let test_lower_loop_numbering_matches_interp () =
  (* nested and branched loops must be numbered identically by Lower and
     the interpreter (pre-order) *)
  let src =
    {|__kernel void f(__global float* a, int n) {
        for (int i = 0; i < 2; i++) {
          for (int j = 0; j < 3; j++) { a[i * 3 + j] = 0.0f; }
        }
        if (n > 0) {
          for (int k = 0; k < 4; k++) { a[k] = 1.0f; }
        }
      }|}
  in
  let l =
    Launch.make ~global:(Launch.dim3 8) ~local:(Launch.dim3 8)
      ~args:
        [
          ("a", Launch.Buffer { length = 64; init = Launch.Zeros });
          ("n", Launch.Scalar (Launch.Int 8L));
        ]
  in
  let cdfg, info = lower_src ~launch:l src in
  let static =
    Cdfg.fold_loops (fun acc i -> (i.Cdfg.loop_id, i.Cdfg.static_trip) :: acc) []
      cdfg.Cdfg.body
    |> List.rev
  in
  check Alcotest.bool "static ids 0,1,2" true
    (static = [ (0, Some 2); (1, Some 3); (2, Some 4) ]);
  let k = Parser.parse_kernel src in
  let profile = Flexcl_interp.Interp.run k info l in
  let trips = profile.Flexcl_interp.Interp.avg_trips in
  check (Alcotest.float 1e-9) "loop 0 trip" 2.0 (List.assoc 0 trips);
  check (Alcotest.float 1e-9) "loop 1 trip" 3.0 (List.assoc 1 trips);
  check (Alcotest.float 1e-9) "loop 2 trip" 4.0 (List.assoc 2 trips)

let test_lower_mem_nodes_annotated () =
  let cdfg, _ =
    lower_src
      {|__kernel void f(__global float* a, int n) {
          int g = get_global_id(0);
          a[g + 1] = a[g] * 2.0f;
        }|}
  in
  let mems =
    List.concat_map Dfg.mem_nodes (blocks_of cdfg.Cdfg.body)
  in
  check Alcotest.int "two accesses" 2 (List.length mems);
  List.iter
    (fun (node : Dfg.node) ->
      check Alcotest.bool "array name" true (node.Dfg.array = Some "a");
      check Alcotest.bool "index kept" true (node.Dfg.index <> None))
    mems

let test_lower_local_vs_global_space () =
  let cdfg, _ =
    lower_src
      {|__kernel void f(__global float* a, int n) {
          __local float tile[64];
          int lid = get_local_id(0);
          tile[lid] = a[lid];
        }|}
  in
  let mems = List.concat_map Dfg.mem_nodes (blocks_of cdfg.Cdfg.body) in
  let kinds = List.map (fun (n : Dfg.node) -> n.Dfg.op) mems |> List.sort compare in
  check Alcotest.bool "one global load one local store" true
    (kinds = List.sort compare [ Opcode.Load Opcode.Global_mem; Opcode.Store Opcode.Local_mem ])

let test_weighted_op_counts () =
  let cdfg, _ =
    lower_src
      {|__kernel void f(__global float* a, int n) {
          float s = 0.0f;
          for (int i = 0; i < 10; i++) { s += a[i]; }
          a[0] = s;
        }|}
  in
  let trip (info : Cdfg.loop_info) = Option.value info.Cdfg.static_trip ~default:1 in
  let loads =
    Cdfg.count_ops cdfg.Cdfg.body
      (fun op -> op = Opcode.Load Opcode.Global_mem)
      ~trip
  in
  check (Alcotest.float 1e-9) "10 loads per work-item" 10.0 loads

let test_branch_counts_take_max () =
  let cdfg, _ =
    lower_src
      {|__kernel void f(__global float* a, int n) {
          int g = get_global_id(0);
          if (g < n) {
            a[g] = a[g] + 1.0f;
          } else {
            a[g] = a[g] * a[g + 1] + 2.0f;
          }
        }|}
  in
  let loads =
    Cdfg.count_ops cdfg.Cdfg.body
      (fun op -> op = Opcode.Load Opcode.Global_mem)
      ~trip:(fun _ -> 1)
  in
  (* else side has 2 loads, then side 1: max = 2 *)
  check (Alcotest.float 1e-9) "max of sides" 2.0 loads

let test_region_reads_writes () =
  let cdfg, _ =
    lower_src
      {|__kernel void f(__global float* a, __global float* b, int n) {
          int g = get_global_id(0);
          b[g] = a[g];
        }|}
  in
  let reads = Cdfg.region_reads cdfg.Cdfg.body in
  let writes = Cdfg.region_writes cdfg.Cdfg.body in
  check Alcotest.bool "reads a" true (List.mem "a" reads);
  check Alcotest.bool "writes b" true (List.mem "b" writes);
  check Alcotest.bool "does not write a" true (not (List.mem "a" writes))

let test_live_in_and_scalar_defs () =
  (* accumulator: s read before (re)definition in loop body block *)
  let cdfg, _ =
    lower_src
      {|__kernel void f(__global float* a, int n) {
          float s = 0.0f;
          for (int i = 0; i < 8; i++) { s = s + a[i]; }
          a[0] = s;
        }|}
  in
  let loop_blocks =
    let rec find = function
      | Cdfg.Loop { body; _ } -> blocks_of body
      | Cdfg.Seq rs -> List.concat_map find rs
      | Cdfg.Branch { then_; else_; _ } -> find then_ @ find else_
      | Cdfg.Straight _ -> []
    in
    find cdfg.Cdfg.body
  in
  let has_live_in =
    List.exists (fun d -> List.mem_assoc "s" (Dfg.live_ins d)) loop_blocks
  in
  let has_def =
    List.exists (fun d -> List.mem_assoc "s" (Dfg.scalar_defs d)) loop_blocks
  in
  check Alcotest.bool "live-in for s" true has_live_in;
  check Alcotest.bool "def for s" true has_def

(* ------------------------------------------------------------------ *)
(* Dependence analysis *)

let analyze_src ?launch:(l = launch ()) src =
  let k = Parser.parse_kernel src in
  let info = Sema.analyze k in
  let cdfg = Lower.lower k info l in
  (cdfg, l)

let test_affine_probe () =
  let l = launch () in
  let probe e =
    Depend.affine_probe l ~subst:(fun _ -> None) ~carried:`Work_item
      (Parser.parse_expr e)
  in
  check Alcotest.bool "gid" true (probe "get_global_id(0)" = Some (0L, 1L));
  check Alcotest.bool "2*gid+3" true (probe "2 * get_global_id(0) + 3" = Some (3L, 2L));
  check Alcotest.bool "constant" true (probe "7" = Some (7L, 0L));
  check Alcotest.bool "quadratic is rejected" true
    (probe "get_global_id(0) * get_global_id(0)" = None)

let test_wi_recurrence_accumulator () =
  (* every work-item reads and writes out[0]: distance-1 recurrence *)
  let cdfg, l =
    analyze_src
      ~launch:
        (Launch.make ~global:(Launch.dim3 64) ~local:(Launch.dim3 64)
           ~args:[ ("out", Launch.Buffer { length = 4; init = Launch.Zeros }) ])
      {|__kernel void f(__global float* out) {
          out[0] = out[0] + 1.0f;
        }|}
  in
  match Depend.work_item_recurrences cdfg l with
  | [ r ] ->
      check Alcotest.int "distance 1" 1 r.Depend.distance;
      check Alcotest.string "array" "out" r.Depend.array
  | rs -> Alcotest.failf "expected one recurrence, got %d" (List.length rs)

let test_wi_recurrence_distance () =
  (* work-item g writes a[g], g+2 reads it: distance 2 *)
  let cdfg, l =
    analyze_src
      ~launch:
        (Launch.make ~global:(Launch.dim3 64) ~local:(Launch.dim3 64)
           ~args:[ ("a", Launch.Buffer { length = 128; init = Launch.Zeros }) ])
      {|__kernel void f(__global float* a) {
          int g = get_global_id(0);
          a[g + 2] = a[g] + 1.0f;
        }|}
  in
  match Depend.work_item_recurrences cdfg l with
  | [ r ] -> check Alcotest.int "distance 2" 2 r.Depend.distance
  | rs -> Alcotest.failf "expected one recurrence, got %d" (List.length rs)

let test_wi_no_recurrence_disjoint () =
  (* forward-only: g reads a[g+1], writes a[g]: writer never read later *)
  let cdfg, l =
    analyze_src
      ~launch:
        (Launch.make ~global:(Launch.dim3 64) ~local:(Launch.dim3 64)
           ~args:[ ("a", Launch.Buffer { length = 128; init = Launch.Zeros }) ])
      {|__kernel void f(__global float* a) {
          int g = get_global_id(0);
          a[g] = a[g + 1] + 1.0f;
        }|}
  in
  check Alcotest.int "no recurrence" 0
    (List.length (Depend.work_item_recurrences cdfg l))

let test_loop_recurrence_scalar_accumulator () =
  let cdfg, l =
    analyze_src
      {|__kernel void f(__global float* a, int n) {
          float s = 0.0f;
          for (int i = 0; i < 8; i++) { s = s + 1.0f; }
          a[0] = s;
        }|}
  in
  let recs = Depend.loop_recurrences cdfg l in
  match recs with
  | [ (0, rs) ] ->
      check Alcotest.bool "scalar recurrence on s" true
        (List.exists (fun r -> r.Depend.array = "<s>") rs)
  | _ -> Alcotest.fail "expected loop 0 entry"

let test_loop_recurrence_array () =
  (* iteration i reads a[i-1] written by iteration i-1: distance 1 *)
  let cdfg, l =
    analyze_src
      ~launch:
        (Launch.make ~global:(Launch.dim3 8) ~local:(Launch.dim3 8)
           ~args:[ ("a", Launch.Buffer { length = 64; init = Launch.Zeros }) ])
      {|__kernel void f(__global float* a) {
          for (int i = 1; i < 32; i++) {
            a[i] = a[i - 1] + 1.0f;
          }
        }|}
  in
  match Depend.loop_recurrences cdfg l with
  | [ (0, rs) ] ->
      check Alcotest.bool "array recurrence distance 1" true
        (List.exists (fun r -> r.Depend.array = "a" && r.Depend.distance = 1) rs)
  | _ -> Alcotest.fail "expected loop 0 recurrences"

let test_data_dependent_index_ignored () =
  (* gather through an index array: not affine, conservatively no rec *)
  let cdfg, l =
    analyze_src
      ~launch:
        (Launch.make ~global:(Launch.dim3 8) ~local:(Launch.dim3 8)
           ~args:
             [
               ("a", Launch.Buffer { length = 64; init = Launch.Zeros });
               ("idx", Launch.Buffer { length = 64; init = Launch.Ramp });
             ])
      {|__kernel void f(__global float* a, __global const int* idx) {
          int g = get_global_id(0);
          a[idx[g]] = a[g] + 1.0f;
        }|}
  in
  check Alcotest.int "gather has no static recurrence" 0
    (List.length (Depend.work_item_recurrences cdfg l))

(* ------------------------------------------------------------------ *)
(* Opcode classification *)

let test_opcode_of_binop () =
  check Alcotest.bool "float add" true
    (Opcode.of_binop Ast.Add ~float:true = Opcode.Float_add);
  check Alcotest.bool "int mul" true (Opcode.of_binop Ast.Mul ~float:false = Opcode.Int_mul);
  check Alcotest.bool "float compare" true
    (Opcode.of_binop Ast.Lt ~float:true = Opcode.Float_cmp);
  check Alcotest.bool "logic is int" true
    (Opcode.of_binop Ast.Land ~float:true = Opcode.Int_alu)

let test_opcode_of_builtin () =
  check Alcotest.bool "sqrt" true
    (Opcode.of_builtin (Builtins.Math1 Builtins.Sqrt) = Opcode.Float_sqrt);
  check Alcotest.bool "mad maps to fmul" true
    (Opcode.of_builtin (Builtins.Math3 Builtins.Mad) = Opcode.Float_mul);
  check Alcotest.bool "wi query" true
    (Opcode.of_builtin (Builtins.Wi Builtins.Get_local_id) = Opcode.Wi_query)

let test_opcode_predicates () =
  check Alcotest.bool "local access" true
    (Opcode.is_local_access (Opcode.Load Opcode.Local_mem));
  check Alcotest.bool "global access" true
    (Opcode.is_global_access (Opcode.Store Opcode.Global_mem));
  check Alcotest.bool "alu is not mem" false (Opcode.is_mem Opcode.Int_alu)

(* ------------------------------------------------------------------ *)
(* qcheck: trip-count formula against brute force *)

let prop_static_trip_matches_bruteforce =
  QCheck.Test.make ~name:"static trip count equals brute-force iteration" ~count:300
    QCheck.(triple (int_range (-20) 20) (int_range (-20) 40) (int_range 1 7))
    (fun (i0, bound, stride) ->
      let src =
        Printf.sprintf
          "__kernel void f(int n) { for (int i = %d; i < %d; i += %d) { int x = i; } }"
          i0 bound stride
      in
      let expected =
        let count = ref 0 and i = ref i0 in
        while !i < bound do
          incr count;
          i := !i + stride
        done;
        !count
      in
      trips_of src = [ Some expected ])

let suite =
  [
    Alcotest.test_case "launch: validation" `Quick test_launch_validation;
    Alcotest.test_case "launch: geometry counts" `Quick test_launch_counts;
    Alcotest.test_case "launch: scalar env" `Quick test_launch_scalar_env;
    Alcotest.test_case "lower: eval_static" `Quick test_eval_static;
    Alcotest.test_case "lower: trip <" `Quick test_static_trip_simple;
    Alcotest.test_case "lower: trip <=" `Quick test_static_trip_le;
    Alcotest.test_case "lower: trip stride" `Quick test_static_trip_stride;
    Alcotest.test_case "lower: trip countdown" `Quick test_static_trip_down;
    Alcotest.test_case "lower: trip from scalar arg" `Quick test_static_trip_scalar_arg;
    Alcotest.test_case "lower: trip from local size" `Quick test_static_trip_wi_size;
    Alcotest.test_case "lower: dynamic trip" `Quick test_static_trip_dynamic;
    Alcotest.test_case "lower: while trip" `Quick test_while_has_no_static_trip;
    Alcotest.test_case "lower: straight-line merge" `Quick test_lower_straight_merge;
    Alcotest.test_case "lower: loop structure" `Quick test_lower_loop_structure;
    Alcotest.test_case "lower: branch structure" `Quick test_lower_branch_structure;
    Alcotest.test_case "lower: loop numbering matches interpreter" `Quick
      test_lower_loop_numbering_matches_interp;
    Alcotest.test_case "lower: memory annotations" `Quick test_lower_mem_nodes_annotated;
    Alcotest.test_case "lower: address spaces" `Quick test_lower_local_vs_global_space;
    Alcotest.test_case "cdfg: weighted op counts" `Quick test_weighted_op_counts;
    Alcotest.test_case "cdfg: branch max counts" `Quick test_branch_counts_take_max;
    Alcotest.test_case "cdfg: region reads/writes" `Quick test_region_reads_writes;
    Alcotest.test_case "dfg: live-ins and scalar defs" `Quick test_live_in_and_scalar_defs;
    Alcotest.test_case "depend: affine probe" `Quick test_affine_probe;
    Alcotest.test_case "depend: accumulator recurrence" `Quick
      test_wi_recurrence_accumulator;
    Alcotest.test_case "depend: distance-2 recurrence" `Quick test_wi_recurrence_distance;
    Alcotest.test_case "depend: no recurrence forward" `Quick
      test_wi_no_recurrence_disjoint;
    Alcotest.test_case "depend: scalar loop accumulator" `Quick
      test_loop_recurrence_scalar_accumulator;
    Alcotest.test_case "depend: array loop recurrence" `Quick test_loop_recurrence_array;
    Alcotest.test_case "depend: data-dependent ignored" `Quick
      test_data_dependent_index_ignored;
    Alcotest.test_case "opcode: binop mapping" `Quick test_opcode_of_binop;
    Alcotest.test_case "opcode: builtin mapping" `Quick test_opcode_of_builtin;
    Alcotest.test_case "opcode: predicates" `Quick test_opcode_predicates;
    QCheck_alcotest.to_alcotest prop_static_trip_matches_bruteforce;
  ]

(* ------------------------------------------------------------------ *)
(* Optimization pragmas end-to-end (appended suite) *)

module Model_t = Flexcl_core.Model
module Config_t = Flexcl_core.Config
module Analysis_t = Flexcl_core.Analysis

let dev = Flexcl_device.Device.virtex7

let pragma_launch =
  Launch.make ~global:(Launch.dim3 256) ~local:(Launch.dim3 64)
    ~args:
      [
        ("a", Launch.Buffer { length = 4096; init = Launch.Random_floats 5 });
        ("out", Launch.Buffer { length = 256; init = Launch.Zeros });
      ]

let body_with pragma =
  Printf.sprintf
    {|__kernel void k(__global const float* a, __global float* out) {
        int g = get_global_id(0);
        float s = 0.0f;
        %s
        for (int i = 0; i < 16; i++) {
          s += a[g * 16 + i] * 2.0f;
        }
        out[g] = s;
      }|}
    pragma

let plain_cfg =
  { Config_t.wg_size = 64; n_pe = 1; n_cu = 1; wi_pipeline = false;
    comm_mode = Config_t.Pipeline_mode }

let test_pragma_pipeline_reduces_depth () =
  let base = Analysis_t.of_source (body_with "") pragma_launch in
  let piped = Analysis_t.of_source (body_with "#pragma pipeline") pragma_launch in
  let d_base = (Model_t.estimate dev base plain_cfg).Model_t.depth_pe in
  let d_piped = (Model_t.estimate dev piped plain_cfg).Model_t.depth_pe in
  Alcotest.check Alcotest.bool
    (Printf.sprintf "pipelined loop is shorter (%d < %d)" d_piped d_base)
    true (d_piped < d_base)

let indep_body_with pragma =
  (* no loop-carried dependence: iterations are independent stores *)
  Printf.sprintf
    {|__kernel void k(__global const float* a, __global float* out) {
        int g = get_global_id(0);
        %s
        for (int i = 0; i < 16; i++) {
          out[(g * 16 + i) %% 256] = a[g * 16 + i] * 2.0f;
        }
      }|}
    pragma

let test_pragma_unroll_reduces_depth () =
  let base = Analysis_t.of_source (indep_body_with "") pragma_launch in
  let unrolled =
    Analysis_t.of_source (indep_body_with "#pragma unroll 4") pragma_launch
  in
  let d_base = (Model_t.estimate dev base plain_cfg).Model_t.depth_pe in
  let d_unrolled = (Model_t.estimate dev unrolled plain_cfg).Model_t.depth_pe in
  Alcotest.check Alcotest.bool
    (Printf.sprintf "unrolled loop is shorter (%d < %d)" d_unrolled d_base)
    true (d_unrolled < d_base)

let test_pragma_unroll_with_recurrence_serializes () =
  (* an accumulator chain cannot be sped up by unrolling alone: copies
     are chained by the carried dependence *)
  let src pragma =
    Printf.sprintf
      {|__kernel void k(__global const float* a, __global float* out) {
          float s = 0.0f;
          %s
          for (int i = 1; i < 32; i++) {
            s = s * 0.5f + a[i];
          }
          out[get_global_id(0)] = s;
        }|}
      pragma
  in
  let base = Analysis_t.of_source (src "") pragma_launch in
  let unrolled = Analysis_t.of_source (src "#pragma unroll 4") pragma_launch in
  let d_base = (Model_t.estimate dev base plain_cfg).Model_t.depth_pe in
  let d_unrolled = (Model_t.estimate dev unrolled plain_cfg).Model_t.depth_pe in
  Alcotest.check Alcotest.bool "carried chain is not 4x faster" true
    (float_of_int d_unrolled > 0.6 *. float_of_int d_base)

let pragma_suite =
  [
    Alcotest.test_case "pragma: pipeline reduces depth" `Quick
      test_pragma_pipeline_reduces_depth;
    Alcotest.test_case "pragma: unroll reduces depth" `Quick
      test_pragma_unroll_reduces_depth;
    Alcotest.test_case "pragma: unroll vs recurrence" `Quick
      test_pragma_unroll_with_recurrence_serializes;
  ]

let suite = suite @ pragma_suite
