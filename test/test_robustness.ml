(* Robustness tests: golden diagnostics (exact code / message / position
   / caret rendering), interpreter fuel exhaustion, and a fault-injection
   harness that feeds hundreds of mutated benchmark kernels and random
   launches/configs through the total [_result] API, asserting that every
   trial comes back [Ok] or [Error] — never an escaping exception. *)

open Flexcl_opencl
module Diag = Flexcl_util.Diag
module Prng = Flexcl_util.Prng
module Launch = Flexcl_ir.Launch
module Interp = Flexcl_interp.Interp
module Analysis = Flexcl_core.Analysis
module Config = Flexcl_core.Config
module Model = Flexcl_core.Model
module Device = Flexcl_device.Device
module W = Flexcl_workloads.Workload

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Golden diagnostics *)

(* No leading newline: line 1 is the kernel header. *)
let broken_src =
  "__kernel void f(__global float* a, int n) {\n\
  \  int x = ;\n\
  \  a[0] = 1.0f\n\
  \  int y = 3;\n\
   }\n"

let test_lexer_diag () =
  let _toks, diags = Lexer.tokenize_partial "int x = 1 @ 2;" in
  match diags with
  | [ d ] ->
      check Alcotest.bool "code" true (d.Diag.code = Diag.Lex_error);
      check Alcotest.string "message" "unexpected character '@'" d.Diag.message;
      check Alcotest.bool "span" true
        (d.Diag.span = Some { Diag.line = 1; col = 11 })
  | ds -> Alcotest.failf "expected one lexer diagnostic, got %d" (List.length ds)

let test_parser_recovery_diags () =
  let _prog, diags = Parser.parse_program_partial broken_src in
  check Alcotest.bool "recovers past the first error" true (List.length diags >= 2);
  match diags with
  | d1 :: d2 :: _ ->
      check Alcotest.string "first message" "unexpected token ; in expression"
        d1.Diag.message;
      check Alcotest.bool "first span" true
        (d1.Diag.span = Some { Diag.line = 2; col = 11 });
      check Alcotest.string "second message" "expected ; but found int"
        d2.Diag.message;
      check Alcotest.bool "second span" true
        (d2.Diag.span = Some { Diag.line = 4; col = 3 })
  | _ -> Alcotest.fail "expected at least two parser diagnostics"

let test_caret_rendering () =
  let d =
    Diag.make ~file:"k.cl"
      ~span:{ Diag.line = 2; col = 11 }
      Diag.Parse_error "unexpected token ; in expression"
  in
  let expected =
    "error[E-PARSE] k.cl:2:11: unexpected token ; in expression\n\
    \  2 |   int x = ;\n\
    \    |           ^"
  in
  check Alcotest.string "render with caret" expected
    (Diag.render ~source:broken_src d);
  (* without source text, only the header line *)
  check Alcotest.string "render without source"
    "error[E-PARSE] k.cl:2:11: unexpected token ; in expression"
    (Diag.render d)

let test_sema_diag () =
  let src = "__kernel void f(__global float* a) { a[0] = zz; }" in
  let launch =
    Launch.make ~global:(Launch.dim3 16) ~local:(Launch.dim3 16)
      ~args:[ ("a", Launch.Buffer { length = 16; init = Launch.Zeros }) ]
  in
  match Analysis.of_source_result src launch with
  | Error [ d ] ->
      check Alcotest.bool "code" true (d.Diag.code = Diag.Sema_error);
      check Alcotest.string "message" "unknown variable zz" d.Diag.message
  | Error ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)
  | Ok _ -> Alcotest.fail "expected a sema error"

let test_launch_diag () =
  match
    Launch.make_result
      ~global:(Launch.dim3 10)
      ~local:(Launch.dim3 3)
      ~args:[ ("n", Launch.Scalar (Launch.Float Float.nan)) ]
  with
  | Ok _ -> Alcotest.fail "expected launch validation to fail"
  | Error problems ->
      let has s = List.exists (fun p -> Thelpers.contains p s) problems in
      check Alcotest.bool "reports non-dividing local" true
        (has "local.x = 3 does not divide global.x = 10");
      check Alcotest.bool "reports NaN scalar" true (has "scalar n is NaN")

(* ------------------------------------------------------------------ *)
(* Interpreter fuel *)

let spin_src = "__kernel void spin(int n) { while (1) { n = n + 1; } }"

let spin_launch =
  Launch.make ~global:(Launch.dim3 16) ~local:(Launch.dim3 16)
    ~args:[ ("n", Launch.Scalar (Launch.Int 0L)) ]

let test_fuel_limit_raises () =
  let k = Parser.parse_kernel spin_src in
  let info = Sema.analyze k in
  match Interp.run ~max_steps:10_000 k info spin_launch with
  | exception Interp.Profile_budget_exceeded budget ->
      check Alcotest.int "reported budget" 10_000 budget
  | _ -> Alcotest.fail "expected Profile_budget_exceeded"

let test_fuel_limit_diag () =
  match Analysis.of_source_result ~max_steps:10_000 spin_src spin_launch with
  | Error [ d ] ->
      check Alcotest.bool "code" true (d.Diag.code = Diag.Profile_budget_exceeded);
      check Alcotest.string "mnemonic" "E-FUEL" (Diag.code_name d.Diag.code);
      check Alcotest.bool "names the budget" true
        (Thelpers.contains d.Diag.message "10000-step budget")
  | Error ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)
  | Ok _ -> Alcotest.fail "expected the fuel limit to trip"

let test_fuel_empty_body_loop () =
  (* an empty loop body executes zero statements per iteration; fuel is
     also charged per iteration, so this still terminates *)
  let src = "__kernel void spin(int n) { while (1) { } }" in
  match Analysis.of_source_result ~max_steps:10_000 src spin_launch with
  | Error [ d ] ->
      check Alcotest.bool "code" true (d.Diag.code = Diag.Profile_budget_exceeded)
  | Error ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)
  | Ok _ -> Alcotest.fail "expected the fuel limit to trip"

let test_terminating_kernel_unaffected () =
  (* the default budget must not interfere with ordinary kernels *)
  match Analysis.of_source_result Thelpers.sample_kernel_src Thelpers.sample_launch with
  | Ok _ -> ()
  | Error ds ->
      Alcotest.failf "sample kernel failed: %s" (Diag.render_all ds)

(* ------------------------------------------------------------------ *)
(* Fault injection *)

(* Mutations keep the source printable and never lengthen digit runs, so
   a mutant cannot declare a pathologically large array. *)
let flip_chars = [| ';'; '}'; '{'; '('; ')'; '@'; '#'; '0'; 'x'; ' '; '*' |]

let mutate rng src =
  let n = String.length src in
  if n < 4 then src
  else
    match Prng.int rng 3 with
    | 0 ->
        (* truncate mid-token / mid-block *)
        String.sub src 0 (1 + Prng.int rng (n - 1))
    | 1 ->
        (* flip a few characters *)
        let b = Bytes.of_string src in
        for _ = 1 to 1 + Prng.int rng 4 do
          Bytes.set b (Prng.int rng n) (Prng.choose rng flip_chars)
        done;
        Bytes.to_string b
    | _ ->
        (* delete a short span (token / operator / brace removal) *)
        let start = Prng.int rng n in
        let len = min (1 + Prng.int rng 12) (n - start) in
        String.sub src 0 start ^ String.sub src (start + len) (n - start - len)

type outcome = Returned_ok | Returned_error | Escaped of string

let run_source_trial src launch =
  match Analysis.of_source_result ~max_work_groups:1 ~max_steps:50_000 src launch with
  | Ok _ -> Returned_ok
  | Error [] -> Escaped "Error with empty diagnostic list"
  | Error _ -> Returned_error
  | exception exn -> Escaped (Printexc.to_string exn)

let kernel_trials = 400
let launch_trials = 150
let config_trials = 100

let test_inject_mutated_kernels () =
  let workloads =
    Array.of_list (Flexcl_workloads.Rodinia.all @ Flexcl_workloads.Polybench.all)
  in
  check Alcotest.bool "benchmark corpus present" true (Array.length workloads > 0);
  let rng = Prng.create 0xF1EC5 in
  let ok = ref 0 and err = ref 0 in
  let escaped = ref [] in
  for i = 0 to kernel_trials - 1 do
    let w = workloads.(i mod Array.length workloads) in
    let src = mutate rng w.W.source in
    match run_source_trial src w.W.launch with
    | Returned_ok -> incr ok
    | Returned_error -> incr err
    | Escaped msg ->
        escaped := Printf.sprintf "%s (trial %d): %s" (W.name w) i msg :: !escaped
  done;
  (match !escaped with
  | [] -> ()
  | e :: _ ->
      Alcotest.failf "%d escaped exception(s); first: %s" (List.length !escaped) e);
  check Alcotest.int "every trial classified" kernel_trials (!ok + !err);
  (* the mutation set must actually exercise the error paths *)
  check Alcotest.bool "some mutants rejected" true (!err > 0)

let test_inject_random_launches () =
  let rng = Prng.create 42 in
  let dim () =
    match Prng.int rng 6 with
    | 0 -> 0
    | 1 -> -(1 + Prng.int rng 8)
    | _ -> 1 lsl Prng.int rng 12
  in
  for i = 1 to launch_trials do
    let global = { Launch.x = dim (); y = dim (); z = 1 } in
    let local = { Launch.x = dim (); y = dim (); z = 1 } in
    let args =
      List.init (Prng.int rng 4) (fun j ->
          let name = if Prng.bool rng then "a" else Printf.sprintf "a%d" j in
          let arg =
            match Prng.int rng 3 with
            | 0 -> Launch.Scalar (Launch.Int (Int64.of_int (Prng.int rng 100)))
            | 1 -> Launch.Scalar (Launch.Float (if Prng.bool rng then Float.nan else 1.5))
            | _ -> Launch.Buffer { length = dim (); init = Launch.Zeros }
          in
          (name, arg))
    in
    match Launch.make_result ~global ~local ~args with
    | Ok t -> check Alcotest.bool "validate agrees with make_result" true (Launch.validate t = [])
    | Error problems ->
        check Alcotest.bool "problems listed" true (problems <> [])
    | exception exn ->
        Alcotest.failf "make_result escaped on trial %d: %s" i (Printexc.to_string exn)
  done

let test_inject_random_configs () =
  let rng = Prng.create 7 in
  let analysis = Thelpers.sample_analysis () in
  for i = 1 to config_trials do
    let knob good =
      match Prng.int rng 4 with
      | 0 -> 0
      | 1 -> -(1 + Prng.int rng 4)
      | _ -> good
    in
    let cfg =
      {
        Config.wg_size = knob (if Prng.bool rng then 64 else 32);
        n_pe = knob (1 lsl Prng.int rng 8);
        n_cu = knob (1 + Prng.int rng 8);
        wi_pipeline = Prng.bool rng;
        comm_mode = (if Prng.bool rng then Config.Barrier_mode else Config.Pipeline_mode);
      }
    in
    let dev =
      let d = Thelpers.virtex7 in
      match Prng.int rng 5 with
      | 0 -> { d with Device.clock_mhz = 0 }
      | 1 -> { d with Device.local_banks = -2 }
      | _ -> d
    in
    match Model.estimate_result dev analysis cfg with
    | Ok _ | Error _ -> ()
    | exception exn ->
        Alcotest.failf "estimate_result escaped on trial %d: %s" i
          (Printexc.to_string exn)
  done

let test_trial_budget () =
  (* the acceptance floor for the whole harness *)
  check Alcotest.bool "at least 500 fault-injection trials" true
    (kernel_trials + launch_trials + config_trials >= 500)

let suite =
  [
    Alcotest.test_case "diag: lexer golden" `Quick test_lexer_diag;
    Alcotest.test_case "diag: parser recovery golden" `Quick test_parser_recovery_diags;
    Alcotest.test_case "diag: caret rendering" `Quick test_caret_rendering;
    Alcotest.test_case "diag: sema golden" `Quick test_sema_diag;
    Alcotest.test_case "diag: launch validation golden" `Quick test_launch_diag;
    Alcotest.test_case "fuel: while(1) raises" `Quick test_fuel_limit_raises;
    Alcotest.test_case "fuel: while(1) diagnostic" `Quick test_fuel_limit_diag;
    Alcotest.test_case "fuel: empty-body loop" `Quick test_fuel_empty_body_loop;
    Alcotest.test_case "fuel: terminating kernel unaffected" `Quick
      test_terminating_kernel_unaffected;
    Alcotest.test_case "inject: mutated benchmark kernels" `Quick
      test_inject_mutated_kernels;
    Alcotest.test_case "inject: random launches" `Quick test_inject_random_launches;
    Alcotest.test_case "inject: random configs and devices" `Quick
      test_inject_random_configs;
    Alcotest.test_case "inject: trial budget" `Quick test_trial_budget;
  ]
