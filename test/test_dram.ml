(* DRAM model tests: layout, coalescing, pattern classification, timing
   and the stateful simulator. *)

module Dram = Flexcl_dram.Dram
module Interp = Flexcl_interp.Interp

let check = Alcotest.check
let cfg = Dram.ddr3_config

let acc ?(kind = `Read) ?(bits = 32) array index =
  { Interp.array; index; kind; elem_bits = bits }

let layout2 = Dram.layout [ ("a", 4096); ("b", 4096) ]

(* ------------------------------------------------------------------ *)
(* Layout *)

let test_layout_alignment () =
  let l = Dram.layout [ ("a", 100); ("b", 100) ] in
  check Alcotest.int "a at 0" 0 (Dram.base l "a");
  check Alcotest.int "b row-aligned" 1024 (Dram.base l "b")

let test_layout_unknown () =
  (* regression: used to escape as a bare Not_found, which the total
     Result API could not turn into a useful diagnostic *)
  Alcotest.check_raises "unknown buffer names itself and the layout"
    (Invalid_argument "Dram.base: unknown buffer \"zzz\" (layout has: a, b)")
    (fun () -> ignore (Dram.base layout2 "zzz"));
  Alcotest.check_raises "empty layout says so"
    (Invalid_argument "Dram.base: unknown buffer \"a\" (layout has: no buffers)")
    (fun () -> ignore (Dram.base (Dram.layout []) "a"))

let test_address () =
  check Alcotest.int "elem 3 of b" (4096 + 12)
    (Dram.address layout2 "b" ~elem_bits:32 3)

(* ------------------------------------------------------------------ *)
(* Coalescing *)

let test_coalesce_merges_consecutive () =
  (* 32 consecutive int reads, 512-bit unit: 16 elems per txn -> 2 txns *)
  let accesses = List.init 32 (fun i -> acc "a" i) in
  let txns = Dram.coalesce cfg layout2 accesses in
  check Alcotest.int "two transactions" 2 (List.length txns);
  List.iter
    (fun (t : Dram.txn) -> check Alcotest.int "full unit" 64 t.Dram.bytes)
    txns

let test_coalesce_factor_formula () =
  (* paper's example: f = 512/32 = 16; 1024 reads -> 64 transactions *)
  let accesses = List.init 1024 (fun i -> acc "a" i) in
  (* larger buffer for this test *)
  let l = Dram.layout [ ("a", 4096) ] in
  check Alcotest.int "64 txns" 64 (List.length (Dram.coalesce cfg l accesses))

let test_coalesce_breaks_on_kind () =
  let accesses = [ acc "a" 0; acc "a" 1; acc ~kind:`Write "a" 2; acc "a" 3 ] in
  check Alcotest.int "three txns" 3 (List.length (Dram.coalesce cfg layout2 accesses))

let test_coalesce_breaks_on_gap () =
  let accesses = [ acc "a" 0; acc "a" 2 ] in
  check Alcotest.int "two txns" 2 (List.length (Dram.coalesce cfg layout2 accesses))

let test_coalesce_breaks_on_array () =
  let accesses = [ acc "a" 0; acc "b" 1 ] in
  check Alcotest.int "two txns" 2 (List.length (Dram.coalesce cfg layout2 accesses))

let test_coalesce_workgroup_transposes () =
  (* 16 work-items each read a[gid]: one site, consecutive -> 1 txn *)
  let traces = Array.init 16 (fun wi -> [ acc "a" wi ]) in
  check Alcotest.int "one transaction" 1
    (List.length (Dram.coalesce_workgroup cfg layout2 traces))

let test_coalesce_workgroup_ragged () =
  (* work-item 0 skips its access: still close to one transaction *)
  let traces = Array.init 16 (fun wi -> if wi = 0 then [] else [ acc "a" wi ]) in
  check Alcotest.int "one transaction" 1
    (List.length (Dram.coalesce_workgroup cfg layout2 traces))

let test_coalesce_workgroup_two_sites () =
  (* each WI reads a[gid] then b[gid]: 2 sites -> 2 txns *)
  let traces = Array.init 16 (fun wi -> [ acc "a" wi; acc "b" wi ]) in
  check Alcotest.int "two transactions" 2
    (List.length (Dram.coalesce_workgroup cfg layout2 traces))

let test_coalesce_full_width_elements () =
  (* elem_bits = access_unit_bits: the coalescing factor degenerates to
     1 — every access is its own full-unit transaction, even when the
     indices are consecutive *)
  let accesses = List.init 8 (fun i -> acc ~bits:512 "a" i) in
  let txns = Dram.coalesce cfg layout2 accesses in
  check Alcotest.int "one txn per access" 8 (List.length txns);
  List.iter
    (fun (t : Dram.txn) -> check Alcotest.int "full unit" 64 t.Dram.bytes)
    txns

let test_coalesce_never_merges_nonconsecutive () =
  (* descending indices are not a consecutive run — no merge, even
     though both elements share one 512-bit access unit *)
  let txns = Dram.coalesce cfg layout2 [ acc "a" 1; acc "a" 0 ] in
  check Alcotest.int "descending pair stays split" 2 (List.length txns);
  (* two ascending runs separated by a gap never merge either, even when
     the union would fit in a single unit *)
  let txns2 =
    Dram.coalesce cfg layout2 [ acc "a" 0; acc "a" 1; acc "a" 4; acc "a" 5 ]
  in
  check Alcotest.int "two runs stay two txns" 2 (List.length txns2)

let test_coalesce_preserves_program_order () =
  (* transactions come out in the order the accesses were issued, not
     sorted by address — pattern classification depends on it *)
  let txns =
    Dram.coalesce cfg layout2 [ acc "b" 0; acc "a" 0; acc ~kind:`Write "b" 16 ]
  in
  check Alcotest.int "three txns" 3 (List.length txns);
  check
    (Alcotest.list Alcotest.int)
    "addresses in program order"
    [ 4096; 0; 4096 + 64 ]
    (List.map (fun (t : Dram.txn) -> t.Dram.addr) txns)

(* ------------------------------------------------------------------ *)
(* Banks, rows, patterns *)

let test_bank_mapping () =
  check Alcotest.int "addr 0 -> bank 0" 0 (Dram.bank_of cfg 0);
  check Alcotest.int "addr 64 -> bank 1" 1 (Dram.bank_of cfg 64);
  check Alcotest.int "wraps" 0 (Dram.bank_of cfg (64 * 8))

let test_row_mapping () =
  check Alcotest.int "row 0" 0 (Dram.row_of cfg 0);
  (* one row per bank spans row_bytes * n_banks of address space *)
  check Alcotest.int "next row" 1 (Dram.row_of cfg (1024 * 8))

let test_all_patterns_present () =
  check Alcotest.int "8 patterns" 8 (List.length Dram.all_patterns);
  check Alcotest.string "first name" "RAR.hit"
    (Dram.pattern_name (List.hd Dram.all_patterns))

let txn addr kind = { Dram.addr; t_kind = kind; bytes = 64 }

let test_pattern_classification () =
  (* same bank (stride 512 = 8 txns apart), same row: hit; row switch: miss *)
  let stream =
    [
      txn 0 Dram.Read (* cold: miss after (initial) read *);
      txn 0 Dram.Read (* same row: RAR hit *);
      txn (1024 * 8) Dram.Read (* row switch in bank 0: RAR miss *);
      txn (1024 * 8) Dram.Write (* WAR hit *);
      txn (1024 * 8) Dram.Read (* RAW hit *);
    ]
  in
  let counts = Dram.pattern_counts cfg stream in
  let get k p h =
    List.assoc { Dram.kind = k; prev = p; row_hit = h } counts
  in
  check Alcotest.int "RAR misses" 2 (get Dram.Read Dram.Read false);
  check Alcotest.int "RAR hits" 1 (get Dram.Read Dram.Read true);
  check Alcotest.int "WAR hits" 1 (get Dram.Write Dram.Read true);
  check Alcotest.int "RAW hits" 1 (get Dram.Read Dram.Write true)

let test_pattern_counts_conserve () =
  let stream = List.init 100 (fun i -> txn (i * 64) (if i mod 3 = 0 then Dram.Write else Dram.Read)) in
  let total =
    List.fold_left (fun a (_, c) -> a + c) 0 (Dram.pattern_counts cfg stream)
  in
  check Alcotest.int "every txn classified" 100 total

let test_warmup_shifts_to_hits () =
  let stream = List.init 8 (fun i -> txn (i * 64) Dram.Read) in
  let cold = Dram.pattern_counts cfg stream in
  let warm = Dram.pattern_counts ~warmup:stream cfg stream in
  let misses counts =
    List.fold_left
      (fun a ((p : Dram.pattern), c) -> if p.Dram.row_hit then a else a + c)
      0 counts
  in
  check Alcotest.int "cold all miss" 8 (misses cold);
  check Alcotest.int "warm all hit" 0 (misses warm)

(* ------------------------------------------------------------------ *)
(* Timing *)

let test_pattern_latency_ordering () =
  List.iter
    (fun (p : Dram.pattern) ->
      let hit = Dram.pattern_latency cfg { p with Dram.row_hit = true } in
      let miss = Dram.pattern_latency cfg { p with Dram.row_hit = false } in
      check Alcotest.bool "miss costs more" true (miss > hit))
    Dram.all_patterns

let test_pattern_latency_turnaround () =
  let rar = Dram.pattern_latency cfg { Dram.kind = Dram.Read; prev = Dram.Read; row_hit = true } in
  let raw = Dram.pattern_latency cfg { Dram.kind = Dram.Read; prev = Dram.Write; row_hit = true } in
  check Alcotest.bool "write-to-read turnaround" true (raw > rar)

let test_pattern_latency_goldens () =
  (* Table-1 closed forms pinned exactly for the shipped DDR3 timing
     (t_cas=3 t_rcd=3 t_rp=3 t_bus=2 t_wtr=2 t_rtw=1):
       hit  = t_cas + t_bus            (+ turnaround)
       miss = t_rp + t_rcd + t_cas + t_bus (+ turnaround)
     with turnaround t_wtr on W→R and t_rtw on R→W. These are the
     latencies the trace layer's "Table-1" leaves multiply against. *)
  let goldens =
    [
      ("RAR.hit", 5); ("RAW.hit", 7); ("WAR.hit", 6); ("WAW.hit", 5);
      ("RAR.miss", 11); ("RAW.miss", 13); ("WAR.miss", 12); ("WAW.miss", 11);
    ]
  in
  check Alcotest.int "one golden per pattern" (List.length Dram.all_patterns)
    (List.length goldens);
  List.iter
    (fun (p : Dram.pattern) ->
      let name = Dram.pattern_name p in
      check Alcotest.int name (List.assoc name goldens)
        (Dram.pattern_latency cfg p))
    Dram.all_patterns

let test_profile_latencies_refresh_bound () =
  (* The micro-benchmark simulates real refresh, so each average sits at
     or above the closed form, and the excess is bounded by the refresh
     duty cycle: at most one t_rfc stall per refresh_interval of
     simulated time (pairs of prologue+measured transactions, each pair
     at most 2×13 + t_rfc cycles), plus one boundary refresh amortized
     over the 64 measured transactions. *)
  let t_rfc = float_of_int cfg.Dram.t_rfc in
  let pair_worst = (2.0 *. 13.0) +. t_rfc in
  let slack =
    (pair_worst *. t_rfc /. float_of_int cfg.Dram.refresh_interval)
    +. (t_rfc /. 64.0)
  in
  List.iter
    (fun ((p : Dram.pattern), avg) ->
      let closed = float_of_int (Dram.pattern_latency cfg p) in
      let name = Dram.pattern_name p in
      check Alcotest.bool (name ^ " not below closed form") true
        (avg >= closed);
      check Alcotest.bool (name ^ " within refresh overhead") true
        (avg <= closed +. slack))
    (Dram.profile_latencies cfg)

let test_profile_latencies_structure () =
  let table = Dram.profile_latencies cfg in
  check Alcotest.int "8 entries" 8 (List.length table);
  List.iter
    (fun ((p : Dram.pattern), avg) ->
      (* micro-benchmark averages stay near the closed form (refresh adds
         a little) *)
      let closed = float_of_int (Dram.pattern_latency cfg p) in
      check Alcotest.bool
        (Printf.sprintf "%s near closed form" (Dram.pattern_name p))
        true
        (avg >= closed -. 0.5 && avg <= closed +. 4.0))
    table

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_chained_latency () =
  let sim = Dram.Sim.create cfg in
  let t1 = Dram.Sim.access sim ~now:0 (txn 0 Dram.Read) in
  (* cold miss: rp + rcd + cas + bus = 11 *)
  check Alcotest.int "cold access" 11 t1;
  let t2 = Dram.Sim.access sim ~now:t1 (txn 64 Dram.Read) in
  (* different bank, but ~cold too; bus already free *)
  check Alcotest.bool "completes" true (t2 > t1)

let test_sim_row_hit_faster () =
  let sim = Dram.Sim.create cfg in
  let t1 = Dram.Sim.access sim ~now:0 (txn 0 Dram.Read) in
  let t2 = Dram.Sim.access sim ~now:t1 (txn 0 Dram.Read) in
  check Alcotest.bool "hit faster than miss" true (t2 - t1 < t1)

let test_sim_bus_throughput () =
  (* pipelined hits across banks: steady state ~ t_bus per txn *)
  let sim = Dram.Sim.create cfg in
  (* warm all banks *)
  let now = ref 0 in
  for i = 0 to 7 do
    now := Dram.Sim.access sim ~now:!now (txn (i * 64) Dram.Read)
  done;
  let start = !now in
  (* issue 64 warm transactions back-to-back (all at the same 'now') *)
  let finish = ref start in
  for i = 0 to 63 do
    let f = Dram.Sim.access sim ~now:start (txn (i * 64) Dram.Read) in
    if f > !finish then finish := f
  done;
  let span = !finish - start in
  check Alcotest.bool "bus limited" true
    (span >= 64 * cfg.Dram.t_bus && span <= (64 * cfg.Dram.t_bus) + 40)

let test_sim_counts () =
  let sim = Dram.Sim.create cfg in
  ignore (Dram.Sim.access sim ~now:0 (txn 0 Dram.Read));
  ignore (Dram.Sim.access sim ~now:0 (txn 64 Dram.Write));
  check Alcotest.int "reads" 1 (Dram.Sim.completed_reads sim);
  check Alcotest.int "writes" 1 (Dram.Sim.completed_writes sim)

let test_sim_refresh_stalls () =
  let sim = Dram.Sim.create cfg in
  (* an access arriving exactly at the refresh deadline waits t_rfc *)
  let fin = Dram.Sim.access sim ~now:cfg.Dram.refresh_interval (txn 0 Dram.Read) in
  check Alcotest.bool "delayed by refresh" true
    (fin >= cfg.Dram.refresh_interval + cfg.Dram.t_rfc)

(* qcheck: completion never precedes arrival; bus is exclusive *)
let prop_sim_monotone =
  QCheck.Test.make ~name:"sim completion never precedes issue" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 40) (pair (int_range 0 10000) bool))
    (fun raw ->
      let sim = Dram.Sim.create cfg in
      let now = ref 0 in
      List.for_all
        (fun (addr, is_write) ->
          let kind = if is_write then Dram.Write else Dram.Read in
          let fin = Dram.Sim.access sim ~now:!now (txn (addr * 64) kind) in
          let ok = fin >= !now + cfg.Dram.t_bus in
          now := fin;
          ok)
        raw)

let prop_coalesce_conserves_bytes =
  QCheck.Test.make
    ~name:"coalescing conserves bytes of the deduplicated stream" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 60) (int_range 0 500))
    (fun idxs ->
      (* consecutive repeats of the same element are broadcasts and ride
         along for free; all other accesses carry their bytes *)
      let rec dedupe = function
        | a :: b :: rest when a = b -> dedupe (a :: rest)
        | a :: rest -> a :: dedupe rest
        | [] -> []
      in
      let accesses = List.map (fun i -> acc "a" i) idxs in
      let l = Dram.layout [ ("a", 4096) ] in
      let txns = Dram.coalesce cfg l accesses in
      List.fold_left (fun a (t : Dram.txn) -> a + t.Dram.bytes) 0 txns
      = 4 * List.length (dedupe idxs))

(* ------------------------------------------------------------------ *)
(* Multi-channel addressing, placement and classification (DESIGN.md §15) *)

let cfg2 = { cfg with Dram.n_channels = 2 }

let test_chan_decode () =
  check Alcotest.int "1-channel always 0" 0 (Dram.chan_of cfg (Dram.chan_region * 3));
  check Alcotest.int "low addresses on channel 0" 0 (Dram.chan_of cfg2 4096);
  check Alcotest.int "region 1 on channel 1" 1 (Dram.chan_of cfg2 Dram.chan_region);
  (* out-of-range regions clamp instead of wrapping silently *)
  check Alcotest.int "clamped" 1 (Dram.chan_of cfg2 (Dram.chan_region * 7));
  (* bank/row decoding ignores the channel bits: a channel-1 address
     decodes to the same bank and row as its channel-0 twin *)
  check Alcotest.int "bank is channel-local" (Dram.bank_of cfg2 192)
    (Dram.bank_of cfg2 (Dram.chan_region + 192));
  check Alcotest.int "row is channel-local" (Dram.row_of cfg2 (1024 * 8))
    (Dram.row_of cfg2 (Dram.chan_region + (1024 * 8)))

let test_placement_layout () =
  let l = Dram.layout ~placement:[ ("b", 1) ] [ ("a", 4096); ("b", 4096) ] in
  check Alcotest.int "a stays on channel 0" 0 (Dram.base l "a");
  check Alcotest.int "b at the start of region 1" Dram.chan_region
    (Dram.base l "b");
  (* the all-zeros placement reproduces the unplaced layout byte for byte *)
  let explicit = Dram.layout ~placement:[ ("a", 0); ("b", 0) ] [ ("a", 100); ("b", 100) ] in
  let plain = Dram.layout [ ("a", 100); ("b", 100) ] in
  List.iter
    (fun n -> check Alcotest.int (n ^ " identical") (Dram.base plain n) (Dram.base explicit n))
    [ "a"; "b" ]

let test_placement_error_messages () =
  let buffers = [ "a"; "b" ] in
  (match Dram.placement_error cfg2 [ ("zzz", 0) ] ~buffers with
  | Some msg ->
      check Alcotest.bool "names the unknown buffer" true
        (Thelpers.contains msg "zzz" && Thelpers.contains msg "a, b")
  | None -> Alcotest.fail "unknown buffer accepted");
  (match Dram.placement_error cfg2 [ ("a", 5) ] ~buffers with
  | Some msg ->
      check Alcotest.bool "names the channel range" true
        (Thelpers.contains msg "channel 5" && Thelpers.contains msg "0..1")
  | None -> Alcotest.fail "out-of-range channel accepted");
  (match Dram.placement_error cfg [ ("a", 1) ] ~buffers with
  | Some _ -> ()
  | None -> Alcotest.fail "channel 1 accepted on a 1-channel device");
  check Alcotest.bool "valid placement passes" true
    (Dram.placement_error cfg2 [ ("a", 0); ("b", 1) ] ~buffers = None)

let ctxn chan addr kind =
  { Dram.addr = (chan * Dram.chan_region) + addr; t_kind = kind; bytes = 64 }

let test_per_channel_first_access_miss () =
  (* each channel's banks start cold: the first access to a bank of
     every channel is a miss after read, even at the same bank offset *)
  let stream = [ ctxn 0 0 Dram.Read; ctxn 1 0 Dram.Read ] in
  let by_chan = Dram.pattern_counts_by_channel cfg2 stream in
  check Alcotest.int "two channels" 2 (Array.length by_chan);
  let miss counts =
    List.assoc { Dram.kind = Dram.Read; prev = Dram.Read; row_hit = false } counts
  in
  check Alcotest.int "channel 0 cold miss" 1 (miss by_chan.(0));
  check Alcotest.int "channel 1 cold miss" 1 (miss by_chan.(1));
  (* on one channel the same two accesses would be miss + row hit *)
  let one = Dram.pattern_counts cfg2 [ ctxn 0 0 Dram.Read; ctxn 0 0 Dram.Read ] in
  check Alcotest.int "same-channel pair hits" 1
    (List.assoc { Dram.kind = Dram.Read; prev = Dram.Read; row_hit = true } one)

let test_warmup_replay_per_channel () =
  (* regression: warmup must warm each channel's banks independently — a
     warmup touching only channel 0 leaves channel 1 cold *)
  let warmup = [ ctxn 0 0 Dram.Read ] in
  let stream = [ ctxn 0 0 Dram.Read; ctxn 1 0 Dram.Read ] in
  let by_chan = Dram.pattern_counts_by_channel ~warmup cfg2 stream in
  let hit counts =
    List.assoc { Dram.kind = Dram.Read; prev = Dram.Read; row_hit = true } counts
  and miss counts =
    List.assoc { Dram.kind = Dram.Read; prev = Dram.Read; row_hit = false } counts
  in
  check Alcotest.int "warmed channel hits" 1 (hit by_chan.(0));
  check Alcotest.int "unwarmed channel still misses" 1 (miss by_chan.(1));
  (* warming both channels turns both accesses into hits *)
  let warm2 = Dram.pattern_counts_by_channel ~warmup:stream cfg2 stream in
  check Alcotest.int "both warm" 2 (hit warm2.(0) + hit warm2.(1))

let test_single_channel_counts_degenerate () =
  (* on a 1-channel config the by-channel view is a single stream equal
     to the aggregate *)
  let stream = List.init 40 (fun i -> txn (i * 64) (if i mod 3 = 0 then Dram.Write else Dram.Read)) in
  let by_chan = Dram.pattern_counts_by_channel cfg stream in
  check Alcotest.int "one channel" 1 (Array.length by_chan);
  check Alcotest.bool "identical to the aggregate" true
    (by_chan.(0) = Dram.pattern_counts cfg stream)

let test_sim_channels_independent () =
  (* the same bank-0 row-miss pair is serialized on one channel but
     overlaps when split across channels *)
  let run stream =
    let sim = Dram.Sim.create cfg2 in
    List.fold_left (fun latest t -> max latest (Dram.Sim.access sim ~now:0 t)) 0 stream
  in
  let same_chan = run [ ctxn 0 0 Dram.Read; ctxn 0 (1024 * 8) Dram.Read ] in
  let split = run [ ctxn 0 0 Dram.Read; ctxn 1 (1024 * 8) Dram.Read ] in
  check Alcotest.bool
    (Printf.sprintf "split %d < serialized %d" split same_chan)
    true (split < same_chan)

(* qcheck: per-channel counts always sum (pattern by pattern) to the
   aggregate classification, warm or cold *)
let prop_counts_by_channel_sum =
  let cfg4 = { cfg with Dram.n_channels = 4 } in
  QCheck.Test.make ~name:"per-channel pattern counts sum to the aggregate"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 30) (triple (int_range 0 3) (int_range 0 200) bool))
        (list_of_size Gen.(int_range 0 10) (triple (int_range 0 3) (int_range 0 200) bool)))
    (fun (raw, raw_warmup) ->
      let stream_of = List.map (fun (chan, slot, w) ->
          ctxn chan (slot * 64) (if w then Dram.Write else Dram.Read))
      in
      let stream = stream_of raw and warmup = stream_of raw_warmup in
      let total = Dram.pattern_counts ~warmup cfg4 stream in
      let by_chan = Dram.pattern_counts_by_channel ~warmup cfg4 stream in
      Array.length by_chan = 4
      && List.for_all
           (fun p ->
             List.assoc p total
             = Array.fold_left (fun acc c -> acc + List.assoc p c) 0 by_chan)
           Dram.all_patterns)

(* qcheck: widening the per-channel outstanding-transaction queue never
   delays any transaction's completion *)
let prop_sim_queue_monotone =
  QCheck.Test.make ~name:"sim completion monotone in queue depth" ~count:200
    QCheck.(
      pair (int_range 1 6)
        (list_of_size Gen.(int_range 1 40)
           (triple (int_range 0 1) (int_range 0 300) bool)))
    (fun (depth, raw) ->
      let finishes qd =
        let sim = Dram.Sim.create { cfg2 with Dram.queue_depth = qd } in
        List.map
          (fun (chan, slot, w) ->
            Dram.Sim.access sim ~now:0
              (ctxn chan (slot * 64) (if w then Dram.Write else Dram.Read)))
          raw
      in
      List.for_all2 (fun deep shallow -> deep <= shallow)
        (finishes (depth + 1)) (finishes depth))

let suite =
  [
    Alcotest.test_case "dram: layout alignment" `Quick test_layout_alignment;
    Alcotest.test_case "dram: layout unknown" `Quick test_layout_unknown;
    Alcotest.test_case "dram: addresses" `Quick test_address;
    Alcotest.test_case "dram: coalesce merges" `Quick test_coalesce_merges_consecutive;
    Alcotest.test_case "dram: coalescing factor (paper example)" `Quick
      test_coalesce_factor_formula;
    Alcotest.test_case "dram: coalesce kind break" `Quick test_coalesce_breaks_on_kind;
    Alcotest.test_case "dram: coalesce gap break" `Quick test_coalesce_breaks_on_gap;
    Alcotest.test_case "dram: coalesce array break" `Quick test_coalesce_breaks_on_array;
    Alcotest.test_case "dram: workgroup transpose" `Quick
      test_coalesce_workgroup_transposes;
    Alcotest.test_case "dram: workgroup ragged traces" `Quick
      test_coalesce_workgroup_ragged;
    Alcotest.test_case "dram: workgroup two sites" `Quick
      test_coalesce_workgroup_two_sites;
    Alcotest.test_case "dram: full-width elements coalesce to factor 1" `Quick
      test_coalesce_full_width_elements;
    Alcotest.test_case "dram: non-consecutive runs never merge" `Quick
      test_coalesce_never_merges_nonconsecutive;
    Alcotest.test_case "dram: coalescing preserves program order" `Quick
      test_coalesce_preserves_program_order;
    Alcotest.test_case "dram: bank mapping" `Quick test_bank_mapping;
    Alcotest.test_case "dram: row mapping" `Quick test_row_mapping;
    Alcotest.test_case "dram: table 1 patterns" `Quick test_all_patterns_present;
    Alcotest.test_case "dram: classification" `Quick test_pattern_classification;
    Alcotest.test_case "dram: counts conserve" `Quick test_pattern_counts_conserve;
    Alcotest.test_case "dram: warmup steady state" `Quick test_warmup_shifts_to_hits;
    Alcotest.test_case "dram: miss > hit latency" `Quick test_pattern_latency_ordering;
    Alcotest.test_case "dram: turnaround latency" `Quick test_pattern_latency_turnaround;
    Alcotest.test_case "dram: Table-1 closed-form goldens" `Quick
      test_pattern_latency_goldens;
    Alcotest.test_case "dram: micro-benchmark refresh bound" `Quick
      test_profile_latencies_refresh_bound;
    Alcotest.test_case "dram: micro-benchmark table" `Quick
      test_profile_latencies_structure;
    Alcotest.test_case "sim: chained latency" `Quick test_sim_chained_latency;
    Alcotest.test_case "sim: row hits faster" `Quick test_sim_row_hit_faster;
    Alcotest.test_case "sim: bus throughput" `Quick test_sim_bus_throughput;
    Alcotest.test_case "sim: access counters" `Quick test_sim_counts;
    Alcotest.test_case "sim: refresh stalls" `Quick test_sim_refresh_stalls;
    Alcotest.test_case "chan: address decode" `Quick test_chan_decode;
    Alcotest.test_case "chan: placement layout" `Quick test_placement_layout;
    Alcotest.test_case "chan: placement diagnostics" `Quick
      test_placement_error_messages;
    Alcotest.test_case "chan: first access misses per channel" `Quick
      test_per_channel_first_access_miss;
    Alcotest.test_case "chan: warmup replays per channel" `Quick
      test_warmup_replay_per_channel;
    Alcotest.test_case "chan: 1-channel counts degenerate" `Quick
      test_single_channel_counts_degenerate;
    Alcotest.test_case "sim: channels overlap" `Quick test_sim_channels_independent;
    QCheck_alcotest.to_alcotest prop_sim_monotone;
    QCheck_alcotest.to_alcotest prop_coalesce_conserves_bytes;
    QCheck_alcotest.to_alcotest prop_counts_by_channel_sum;
    QCheck_alcotest.to_alcotest prop_sim_queue_monotone;
  ]
