(* Serve subsystem tests: JSON codec goldens and a round-trip property,
   content-hash and launch-fingerprint stability, LRU cache and metrics
   unit tests, protocol goldens (one NDJSON request line → the exact
   response line) for every request kind, a malformed-request fuzz pass
   in the style of test_robustness, the ≥99% cache hit-rate acceptance
   criterion, and request-order preservation for concurrent batches
   served over a real file descriptor. *)

module Json = Flexcl_util.Json
module Hash = Flexcl_util.Hash
module Metrics = Flexcl_util.Metrics
module Prng = Flexcl_util.Prng
module Launch = Flexcl_ir.Launch
module Cache = Flexcl_server.Cache
module Server = Flexcl_server.Server
module Client = Flexcl_server.Client

let check = Alcotest.check

(* descend through nested objects, failing loudly on a missing field *)
let jpath v path =
  List.fold_left
    (fun v k ->
      match Json.member k v with
      | Some v -> v
      | None -> Alcotest.failf "missing field %S in %s" k (Json.to_string v))
    v path

let jint v path =
  match Json.to_int (jpath v path) with
  | Some i -> i
  | None -> Alcotest.failf "field %s is not an int" (String.concat "." path)

(* ------------------------------------------------------------------ *)
(* JSON codec goldens *)

let test_json_print () =
  let v =
    Json.Obj
      [
        ("a", Json.int 1);
        ("b", Json.Arr [ Json.Null; Json.Bool true; Json.Str "x\n\"y" ]);
        ("c", Json.Num 12.72);
      ]
  in
  check Alcotest.string "composite"
    {|{"a":1,"b":[null,true,"x\n\"y"],"c":12.72}|} (Json.to_string v);
  check Alcotest.string "integral without fraction" "2544"
    (Json.to_string (Json.Num 2544.0));
  check Alcotest.string "shortest round-trip" "0.1"
    (Json.to_string (Json.Num 0.1));
  check Alcotest.string "huge integral uses %g" "1e+300"
    (Json.to_string (Json.Num 1e300));
  check Alcotest.string "nan prints null" "null"
    (Json.to_string (Json.Num Float.nan));
  check Alcotest.string "infinity prints null" "null"
    (Json.to_string (Json.Num Float.infinity));
  check Alcotest.string "control chars escaped" {|"\f"|}
    (Json.to_string (Json.Str "\012"));
  check Alcotest.string "low control chars use \\u" {|"\u0001"|}
    (Json.to_string (Json.Str "\001"))

let test_json_parse () =
  (match Json.of_string {| { "k" : [ 1 , 2.5e1 , "A😀" ] } |} with
  | Ok v ->
      check Alcotest.bool "structure" true
        (Json.equal v
           (Json.Obj
              [
                ( "k",
                  Json.Arr
                    [
                      Json.int 1; Json.Num 25.0; Json.Str "A\xf0\x9f\x98\x80";
                    ] );
              ]))
  | Error e -> Alcotest.failf "parse failed: %s" e);
  let rejects what s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok v -> Alcotest.failf "%s accepted as %s" what (Json.to_string v)
  in
  rejects "leading zero" "01";
  rejects "trailing input" "1 2";
  rejects "bad escape" {|"\q"|};
  rejects "trailing array comma" "[1,]";
  rejects "trailing object comma" {|{"a":1,}|};
  rejects "truncated literal" "nul";
  rejects "lone high surrogate" {|"\ud800"|};
  rejects "raw control character" "\"\001\"";
  rejects "bare minus" "-";
  rejects "unterminated object" {|{"a":1|};
  rejects "empty input" "";
  (* the exact message the malformed-request golden below relies on *)
  check Alcotest.string "error names the byte offset"
    "byte 0: invalid literal (expected true)"
    (match Json.of_string "this is not json" with
    | Error e -> e
    | Ok _ -> "accepted")

let gen_json =
  let open QCheck.Gen in
  let gen_str =
    string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 10)
  in
  let gen_num =
    oneof
      [
        map float_of_int (int_range (-1_000_000) 1_000_000);
        (* non-finite floats print as null and cannot round-trip *)
        map (fun f -> if Float.is_finite f then f else 0.0) float;
      ]
  in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun f -> Json.Num f) gen_num;
        map (fun s -> Json.Str s) gen_str;
      ]
  in
  fix
    (fun self depth ->
      if depth <= 0 then scalar
      else
        frequency
          [
            (2, scalar);
            ( 1,
              map
                (fun l -> Json.Arr l)
                (list_size (int_range 0 4) (self (depth - 1))) );
            ( 1,
              map
                (fun l -> Json.Obj l)
                (list_size (int_range 0 4) (pair gen_str (self (depth - 1))))
            );
          ])
    3

let prop_json_roundtrip =
  QCheck.Test.make ~name:"codec round-trips every finite tree" ~count:500
    (QCheck.make gen_json) (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> Json.equal v v'
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e)

(* ------------------------------------------------------------------ *)
(* Content hashing *)

let test_hash_separators () =
  (* add_string must be injective over the split point *)
  check Alcotest.bool "ab|c differs from a|bc" true
    (Hash.(add_string (add_string init "ab") "c")
    <> Hash.(add_string (add_string init "a") "bc"));
  check Alcotest.bool "distinct strings hash apart" true
    (Hash.string "wg64" <> Hash.string "wg65");
  check Alcotest.int "hex width" 16
    (String.length (Hash.to_hex (Hash.string "x")))

let test_launch_fingerprint () =
  let args = [ ("a", Launch.Buffer { length = 64; init = Launch.Zeros }) ] in
  let l1 =
    Launch.make ~global:(Launch.dim3 256) ~local:(Launch.dim3 16) ~args
  in
  let l2 =
    Launch.make ~global:(Launch.dim3 256) ~local:(Launch.dim3 64) ~args
  in
  let l3 =
    Launch.make ~global:(Launch.dim3 512) ~local:(Launch.dim3 16) ~args
  in
  let l4 =
    Launch.make ~global:(Launch.dim3 256) ~local:(Launch.dim3 16)
      ~args:[ ("a", Launch.Buffer { length = 64; init = Launch.Random_floats 1 }) ]
  in
  check Alcotest.bool "local size excluded (DSE memo pairs it with wg)" true
    (Launch.fingerprint l1 = Launch.fingerprint l2);
  check Alcotest.bool "global size included" true
    (Launch.fingerprint l1 <> Launch.fingerprint l3);
  check Alcotest.bool "buffer init recipe included" true
    (Launch.fingerprint l1 <> Launch.fingerprint l4)

(* ------------------------------------------------------------------ *)
(* LRU cache and metrics *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  check Alcotest.bool "a present" true (Cache.find c "a" = Some 1);
  (* the find above made "b" the LRU entry, so a third insert drops it *)
  Cache.add c "c" 3;
  check Alcotest.bool "b evicted" true (Cache.find c "b" = None);
  check Alcotest.bool "a survives" true (Cache.find c "a" = Some 1);
  let st = Cache.stats c in
  check Alcotest.int "evictions" 1 st.Cache.evictions;
  check Alcotest.int "size" 2 st.Cache.size;
  check Alcotest.int "capacity" 2 st.Cache.capacity;
  check Alcotest.int "hits" 2 st.Cache.hits;
  check Alcotest.int "misses" 1 st.Cache.misses;
  let hit, v = Cache.find_or_add c "a" (fun () -> 99) in
  check Alcotest.bool "find_or_add hit" true hit;
  check Alcotest.int "cached value wins" 1 v;
  let hit, v = Cache.find_or_add c "d" (fun () -> 4) in
  check Alcotest.bool "find_or_add miss" false hit;
  check Alcotest.int "produced value" 4 v;
  Cache.clear c;
  check Alcotest.int "clear drops entries" 0 (Cache.stats c).Cache.size

let test_metrics () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr m ~by:3 "a";
  Metrics.incr m "b";
  check
    Alcotest.(list (pair string int))
    "counters sorted"
    [ ("a", 4); ("b", 1) ]
    (Metrics.counters m);
  Metrics.observe m "lat" 100.0;
  Metrics.observe m "lat" 1000.0;
  (match Metrics.summaries m with
  | [ ("lat", s) ] ->
      check Alcotest.int "count" 2 s.Metrics.count;
      check (Alcotest.float 1e-9) "mean" 550.0 s.Metrics.mean;
      check (Alcotest.float 1e-9) "max exact" 1000.0 s.Metrics.max;
      check Alcotest.bool "quantiles ordered" true
        (s.Metrics.p50 <= s.Metrics.p95 && s.Metrics.p95 <= s.Metrics.p99);
      check Alcotest.bool "p50 within a factor of two" true
        (s.Metrics.p50 >= 100.0 && s.Metrics.p50 <= 200.0);
      check Alcotest.bool "p99 capped by the exact max" true
        (s.Metrics.p99 <= 1000.0)
  | l -> Alcotest.failf "expected one histogram, got %d" (List.length l));
  Metrics.reset m;
  check Alcotest.int "reset" 0 (List.length (Metrics.counters m))

(* ------------------------------------------------------------------ *)
(* Protocol goldens: request line → exact response line. The list runs
   in order on one client, so the second predict exercises the warm
   path ("cached":true) with an otherwise byte-identical result. *)

let predict_req =
  {|{"id":1,"kind":"predict","workload":"hotspot/hotspot","pe":2,"cu":2,"pipeline":true}|}

let protocol_goldens : (string * string * string) list =
  [
    ( "predict cold",
      predict_req,
      {|{"id":1,"ok":true,"kind":"predict","cached":false,"result":{"kernel":"hotspot/hotspot","device":"xc7vx690t","config":"wg64 pe2 cu2 pipe pipeline","cycles":2544,"us":12.72,"bottleneck":"global memory"}}|}
    );
    ( "predict warm",
      predict_req,
      {|{"id":1,"ok":true,"kind":"predict","cached":true,"result":{"kernel":"hotspot/hotspot","device":"xc7vx690t","config":"wg64 pe2 cu2 pipe pipeline","cycles":2544,"us":12.72,"bottleneck":"global memory"}}|}
    );
    ( "parse",
      {|{"id":3,"kind":"parse","source":"__kernel void f(__global float* a, int n) { a[0] = 1.0f; }"}|},
      {|{"id":3,"ok":true,"kind":"parse","result":{"kernel":"f","params":[{"name":"a","type":"__global float*"},{"name":"n","type":"int"}],"source_hash":"9992a2be6c24186d"}}|}
    );
    ( "analyze",
      {|{"id":4,"kind":"analyze","workload":"hotspot/hotspot"}|},
      {|{"id":4,"ok":true,"kind":"analyze","result":{"kernel":"hotspot/hotspot","device":"xc7vx690t","config":"wg64 pe1 cu1 nopipe pipeline","ii_wi":71,"rec_mii":0,"res_mii":1,"depth_pe":71,"l_pe":4544,"n_pe_eff":1,"l_cu":4544,"n_cu_eff":1,"l_comp_kernel":72728,"l_mem_wi":4.225016276041667,"pattern_counts":{"RAR.hit":0.3541666666666667,"RAW.hit":0,"WAR.hit":0,"WAW.hit":0.03125,"RAR.miss":0,"RAW.miss":0.08854166666666667,"WAR.miss":0.08854166666666667,"WAW.miss":0},"dsp_footprint":42,"cycles":72704,"us":363.52,"bottleneck":"compute depth"}}|}
    );
    ( "explore",
      {|{"id":5,"kind":"explore","workload":"nn/nn","device":"v7","top":3}|},
      {|{"id":5,"ok":true,"kind":"explore","result":{"kernel":"nn/nn","device":"xc7vx690t","feasible":192,"points":[{"config":"wg256 pe4 cu1 pipe pipeline","cycles":4504,"us":22.52},{"config":"wg256 pe8 cu1 pipe pipeline","cycles":4504,"us":22.52},{"config":"wg128 pe4 cu1 pipe pipeline","cycles":4784,"us":23.92}],"greedy":{"config":"wg256 pe8 cu4 pipe pipeline","cycles":7789,"us":38.945}}}|}
    );
    ( "predict with buffer placement on the HBM device",
      {|{"id":12,"kind":"predict","workload":"bfs/bfs_1","device":"xcu280","pe":2,"cu":2,"pipeline":true,"placement":{"edges":1,"cost":2}}|},
      {|{"id":12,"ok":true,"kind":"predict","cached":false,"result":{"kernel":"bfs/bfs_1","device":"xcu280","config":"wg64 pe2 cu2 pipe pipeline","cycles":15112,"us":50.373333333333335,"bottleneck":"global memory"}}|}
    );
    ( "placement naming an unknown buffer",
      {|{"id":13,"kind":"predict","workload":"bfs/bfs_1","device":"xcu280","placement":{"zzz":0}}|},
      {|{"id":13,"ok":false,"kind":"predict","errors":[{"code":"E-USAGE","severity":"error","message":"unknown buffer \"zzz\" in placement (kernel buffers: node_start, node_len, edges, mask, updating, visited, cost)"}]}|}
    );
    ( "placement outside the device's channels",
      {|{"id":14,"kind":"predict","workload":"bfs/bfs_1","device":"v7","placement":{"edges":1}}|},
      {|{"id":14,"ok":false,"kind":"predict","errors":[{"code":"E-USAGE","severity":"error","message":"buffer \"edges\" placed on channel 1, but device has 1 channel (valid: 0..0)"}]}|}
    );
    ( "pipeline",
      {|{"id":8,"kind":"pipeline","graph":"stencil/blur-sharpen"}|},
      {|{"id":8,"ok":true,"kind":"pipeline","cached":false,"result":{"graph":"stencil/blur-sharpen","device":"xc7vx690t","joint":"blur[wg64 pe1 cu1 nopipe pipeline]; sharpen[wg64 pe1 cu1 nopipe pipeline]; smooth:d8","stages":[{"stage":"blur","cycles":12800},{"stage":"sharpen","cycles":12288}],"steady":12800,"fill":1600,"stall":0,"cycles":14400,"us":72,"bottleneck":"stage blur: compute depth"}}|}
    );
    ( "pipeline missing graph",
      {|{"id":9,"kind":"pipeline"}|},
      {|{"id":9,"ok":false,"kind":"pipeline","errors":[{"code":"E-USAGE","severity":"error","message":"field \"graph\" is required (stream/produce-filter-consume | stencil/blur-sharpen)"}]}|}
    );
    ( "unknown kind",
      {|{"id":6,"kind":"frobnicate"}|},
      {|{"id":6,"ok":false,"kind":"frobnicate","errors":[{"code":"E-USAGE","severity":"error","message":"unknown request kind \"frobnicate\" (parse | analyze | predict | explore | pipeline | stats | shutdown)"}]}|}
    );
    ( "missing source",
      {|{"id":7,"kind":"predict"}|},
      {|{"id":7,"ok":false,"kind":"predict","errors":[{"code":"E-USAGE","severity":"error","message":"one of \"source\" or \"workload\" is required"}]}|}
    );
    ( "launch field on a workload request",
      {|{"id":8,"kind":"predict","workload":"hotspot/hotspot","global":128}|},
      {|{"id":8,"ok":false,"kind":"predict","errors":[{"code":"E-USAGE","severity":"error","message":"field \"global\" does not apply to a workload request"}]}|}
    );
    ( "unknown workload",
      {|{"id":9,"kind":"predict","workload":"nosuch/x"}|},
      {|{"id":9,"ok":false,"kind":"predict","errors":[{"code":"E-USAGE","severity":"error","message":"unknown workload \"nosuch/x\" (see the workloads list)"}]}|}
    );
    ( "deadline maps to fuel",
      {|{"id":10,"kind":"predict","source":"__kernel void spin(int n) { while (1) { n = n + 1; } }","deadline_ms":1}|},
      {|{"id":10,"ok":false,"kind":"predict","errors":[{"code":"E-FUEL","severity":"error","message":"profiling exceeded its 20000-step budget (non-terminating kernel?)"}]}|}
    );
    ( "broken kernel carries the parse span",
      {|{"id":11,"kind":"predict","source":"__kernel void f(__global float* a, int n) { a[0] = ; }"}|},
      {|{"id":11,"ok":false,"kind":"predict","errors":[{"code":"E-PARSE","severity":"error","message":"unexpected token ; in expression","line":1,"col":52}]}|}
    );
    ( "malformed JSON",
      "this is not json",
      {|{"id":null,"ok":false,"kind":null,"errors":[{"code":"E-USAGE","severity":"error","message":"malformed JSON: byte 0: invalid literal (expected true)"}]}|}
    );
  ]

let test_protocol_goldens () =
  let c = Client.create ~num_domains:0 () in
  List.iter
    (fun (what, req, want) ->
      check Alcotest.string what want (Client.request_line c req))
    protocol_goldens

let test_explore_deterministic () =
  let c = Client.create ~num_domains:0 () in
  let req = {|{"id":1,"kind":"explore","workload":"nn/nn","top":5}|} in
  let first = Client.request_line c req in
  check Alcotest.string "repeat explore is byte-identical" first
    (Client.request_line c req)

let test_stats_shape () =
  let c = Client.create ~num_domains:0 () in
  ignore (Client.request_line c predict_req);
  ignore (Client.request_line c predict_req);
  ignore (Client.request_line c {|{"id":1,"kind":"frobnicate"}|});
  let s = Client.stats c in
  check Alcotest.int "predict ok counter" 2
    (jint s [ "counters"; "requests.predict.ok" ]);
  check Alcotest.int "unknown kind counted as error" 1
    (jint s [ "counters"; "requests.unknown.error" ]);
  check Alcotest.int "latency histogram count" 2
    (jint s [ "latency_us"; "predict"; "count" ]);
  check Alcotest.int "predict cache hit" 1 (jint s [ "cache"; "predict"; "hits" ]);
  check Alcotest.int "predict cache miss" 1
    (jint s [ "cache"; "predict"; "misses" ]);
  check Alcotest.int "analysis cached across predicts" 1
    (jint s [ "cache"; "analysis"; "misses" ])

(* ------------------------------------------------------------------ *)
(* Trace over the wire: "trace":true on a predict returns the cycle
   attribution as a "trace" member of the result. The trace must parse
   back through Trace.of_json, satisfy conservation, carry the golden
   cycle total at its root, and come back byte-identical from the cache
   (traced and untraced predictions are distinct cache entries, so a
   plain predict never pays for or returns a trace). *)

module Trace = Flexcl_util.Trace

let traced_predict_req =
  {|{"id":20,"kind":"predict","workload":"hotspot/hotspot","pe":2,"cu":2,"pipeline":true,"trace":true}|}

let test_predict_trace () =
  let c = Client.create ~num_domains:0 () in
  let ask req =
    match Json.of_string (Client.request_line c req) with
    | Ok v -> v
    | Error e -> Alcotest.failf "response not JSON: %s" e
  in
  let cold = ask traced_predict_req in
  check Alcotest.bool "cold miss" false
    (Option.get (Json.to_bool (jpath cold [ "cached" ])));
  let trace_json = jpath cold [ "result"; "trace" ] in
  let tr =
    match Trace.of_json trace_json with
    | Ok t -> t
    | Error e -> Alcotest.failf "trace does not parse: %s" e
  in
  (match Trace.check tr with
  | Ok () -> ()
  | Error e -> Alcotest.failf "conservation violated over the wire: %s" e);
  (* root total = the golden predict cycles for this design point *)
  check (Alcotest.float 1e-9) "root cycles match the predict golden" 2544.0
    tr.Trace.cycles;
  (* warm: served from cache, trace byte-identical to the cold miss *)
  let warm = ask traced_predict_req in
  check Alcotest.bool "warm hit" true
    (Option.get (Json.to_bool (jpath warm [ "cached" ])));
  check Alcotest.string "trace byte-identical on a cache hit"
    (Json.to_string trace_json)
    (Json.to_string (jpath warm [ "result"; "trace" ]));
  (* a plain predict of the same point carries no trace and is its own
     (cold) cache entry — the traced result never leaks into it *)
  let plain =
    ask
      {|{"id":21,"kind":"predict","workload":"hotspot/hotspot","pe":2,"cu":2,"pipeline":true}|}
  in
  check Alcotest.bool "plain predict has no trace member" true
    (Json.member "trace" (jpath plain [ "result" ]) = None);
  check Alcotest.bool "plain predict misses the traced entry" false
    (Option.get (Json.to_bool (jpath plain [ "cached" ])));
  (* "trace":false is the default spelled out — same entry as plain *)
  let explicit_false =
    ask
      {|{"id":22,"kind":"predict","workload":"hotspot/hotspot","pe":2,"cu":2,"pipeline":true,"trace":false}|}
  in
  check Alcotest.bool "trace:false shares the untraced entry" true
    (Option.get (Json.to_bool (jpath explicit_false [ "cached" ])));
  (* the metrics layer counts traced predictions separately *)
  let s = Client.stats c in
  check Alcotest.int "predict.trace counter" 2
    (jint s [ "counters"; "predict.trace" ])

let test_predict_trace_source_kernel () =
  (* trace on an inline-source predict (exercises analyze-then-trace on
     a kernel that is not in the workload library) *)
  let c = Client.create ~num_domains:0 () in
  let req =
    {|{"id":23,"kind":"predict","source":"__kernel void axpy(__global float* x, __global float* y, float a, int n) { int i = get_global_id(0); if (i < n) y[i] = a * x[i] + y[i]; }","global":256,"local":64,"trace":true}|}
  in
  match Json.of_string (Client.request_line c req) with
  | Error e -> Alcotest.failf "response not JSON: %s" e
  | Ok v -> (
      check Alcotest.bool "ok" true
        (Option.get (Json.to_bool (jpath v [ "ok" ])));
      let cycles =
        match Json.to_float (jpath v [ "result"; "cycles" ]) with
        | Some f -> f
        | None -> Alcotest.fail "cycles missing"
      in
      match Trace.of_json (jpath v [ "result"; "trace" ]) with
      | Error e -> Alcotest.failf "trace does not parse: %s" e
      | Ok tr ->
          (match Trace.check tr with
          | Ok () -> ()
          | Error e -> Alcotest.failf "conservation violated: %s" e);
          check (Alcotest.float 1e-9) "trace root = reported cycles" cycles
            tr.Trace.cycles)

(* ------------------------------------------------------------------ *)
(* Calibrated predictions ("calibrated":true, DESIGN.md §16): response
   shape pinned against the committed model golden, calibrated and raw
   predictions as distinct cache entries with byte-identical warm hits,
   and E-NOMODEL when no model is loaded. *)

module Learn = Flexcl_learn.Learn

let golden_model_path =
  let candidates =
    [
      Filename.concat "goldens" "model.golden.json";
      Filename.concat (Filename.concat "test" "goldens") "model.golden.json";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let load_golden_model () =
  let s = In_channel.with_open_bin golden_model_path In_channel.input_all in
  match Learn.model_of_string s with
  | Ok m -> m
  | Error d ->
      Alcotest.failf "committed model unreadable: %s" (Flexcl_util.Diag.render d)

let calibrated_req =
  {|{"id":30,"kind":"predict","workload":"hotspot/hotspot","pe":2,"cu":2,"pipeline":true,"calibrated":true}|}

let test_calibrated_response_shape () =
  let c = Client.create ~num_domains:0 ~model:(load_golden_model ()) () in
  (* exact bytes against the committed model golden: the raw fields stay
     untouched (cycles matches the uncalibrated predict golden), with
     cycles_calibrated and the empirical interval appended after the
     bottleneck; regenerate with `make promote-model` when the fixture
     legitimately moves *)
  let cold = Client.request_line c calibrated_req in
  check Alcotest.string "calibrated cold golden"
    {|{"id":30,"ok":true,"kind":"predict","cached":false,"result":{"kernel":"hotspot/hotspot","device":"xc7vx690t","config":"wg64 pe2 cu2 pipe pipeline","cycles":2544,"us":12.72,"bottleneck":"global memory","cycles_calibrated":2556.812398033061,"ci":{"lo":2314.0853484436593,"hi":3095.831838234368}}}|}
    cold;
  match Json.of_string cold with
  | Error e -> Alcotest.failf "response not JSON: %s" e
  | Ok v ->
      let f path =
        match Json.to_float (jpath v path) with
        | Some x -> x
        | None -> Alcotest.failf "field %s not a number" (String.concat "." path)
      in
      let cal = f [ "result"; "cycles_calibrated" ] in
      check Alcotest.bool "interval brackets the calibrated point" true
        (f [ "result"; "ci"; "lo" ] <= cal && cal <= f [ "result"; "ci"; "hi" ])

let test_calibrated_cache_distinct () =
  let c = Client.create ~num_domains:0 ~model:(load_golden_model ()) () in
  (* a raw predict warms the raw entry only: the first calibrated
     request still misses, and vice versa *)
  let raw1 = Client.request_line c predict_req in
  let cal1 = Client.request_line c calibrated_req in
  let cal2 = Client.request_line c calibrated_req in
  let raw2 = Client.request_line c predict_req in
  let cached line =
    match Json.of_string line with
    | Ok v -> Option.get (Json.to_bool (jpath v [ "cached" ]))
    | Error e -> Alcotest.failf "bad response: %s" e
  in
  check Alcotest.bool "raw cold" false (cached raw1);
  check Alcotest.bool "calibrated misses the raw entry" false (cached cal1);
  check Alcotest.bool "calibrated warm" true (cached cal2);
  check Alcotest.bool "raw warm" true (cached raw2);
  (* the warm hit differs from the cold response only in "cached" *)
  let flip line =
    let sub = {|"cached":false|} and by = {|"cached":true|} in
    let n = String.length line and m = String.length sub in
    let rec find i =
      if i + m > n then line
      else if String.sub line i m = sub then
        String.sub line 0 i ^ by ^ String.sub line (i + m) (n - i - m)
      else find (i + 1)
    in
    find 0
  in
  check Alcotest.string "warm body = cold body" (flip cal1) cal2;
  check Alcotest.string "warm calibrated hit is byte-identical" cal2
    (Client.request_line c calibrated_req);
  let s = Client.stats c in
  check Alcotest.int "predict.calibrated counter" 3
    (jint s [ "counters"; "predict.calibrated" ])

let test_calibrated_without_model () =
  let c = Client.create ~num_domains:0 () in
  check Alcotest.string "E-NOMODEL without --model"
    {|{"id":30,"ok":false,"kind":"predict","errors":[{"code":"E-NOMODEL","severity":"error","message":"\"calibrated\":true but no learned-residual model is loaded (start the server with --model FILE)"}]}|}
    (Client.request_line c calibrated_req)

(* ------------------------------------------------------------------ *)
(* Fuzz: garbage bytes and mutated request lines must always come back
   as one well-formed error-or-ok response — never an exception. *)

let json_flip_chars = [| '{'; '}'; '['; ']'; '"'; ':'; ','; '\\'; '0'; 'e'; ' ' |]

let mutate rng src =
  let n = String.length src in
  if n < 4 then src
  else
    match Prng.int rng 3 with
    | 0 -> String.sub src 0 (1 + Prng.int rng (n - 1))
    | 1 ->
        let b = Bytes.of_string src in
        for _ = 1 to 1 + Prng.int rng 4 do
          Bytes.set b (Prng.int rng n) (Prng.choose rng json_flip_chars)
        done;
        Bytes.to_string b
    | _ ->
        let start = Prng.int rng n in
        let len = min (1 + Prng.int rng 12) (n - start) in
        String.sub src 0 start ^ String.sub src (start + len) (n - start - len)

let fuzz_trials = 400

let test_fuzz_requests () =
  let c = Client.create ~num_domains:0 () in
  let rng = Prng.create 0x5E21E in
  let garbage () =
    String.init (Prng.int rng 40) (fun _ ->
        match Char.chr (1 + Prng.int rng 255) with
        | '\n' -> ' ' (* the record separator cannot appear in a line *)
        | ch -> ch)
  in
  let base =
    Array.of_list
      (List.map (fun (_, req, _) -> req) protocol_goldens
      @ [ traced_predict_req; calibrated_req ])
  in
  let ok = ref 0 and err = ref 0 in
  let escaped = ref [] in
  for i = 0 to fuzz_trials - 1 do
    let line =
      if i mod 3 = 0 then garbage ()
      else mutate rng base.(i mod Array.length base)
    in
    match Client.request_line c line with
    | resp -> (
        match Json.of_string resp with
        | Error e ->
            escaped :=
              Printf.sprintf "trial %d: response not JSON (%s)" i e :: !escaped
        | Ok v -> (
            match Option.bind (Json.member "ok" v) Json.to_bool with
            | Some true -> incr ok
            | Some false -> incr err
            | None ->
                escaped :=
                  Printf.sprintf "trial %d: response lacks \"ok\"" i :: !escaped
            ))
    | exception exn ->
        escaped :=
          Printf.sprintf "trial %d: escaped %s" i (Printexc.to_string exn)
          :: !escaped
  done;
  (match !escaped with
  | [] -> ()
  | e :: _ ->
      Alcotest.failf "%d bad trial(s); first: %s" (List.length !escaped) e);
  check Alcotest.int "every trial answered" fuzz_trials (!ok + !err);
  check Alcotest.bool "error paths exercised" true (!err > 0)

(* ------------------------------------------------------------------ *)
(* Acceptance: 100 repeated predicts, ≥ 99% served from cache. *)

let test_cache_hit_rate () =
  let c = Client.create ~num_domains:0 () in
  let cached = ref 0 in
  for _ = 1 to 100 do
    let r =
      match Json.of_string (Client.request_line c predict_req) with
      | Ok v -> v
      | Error e -> Alcotest.failf "bad response: %s" e
    in
    match Option.bind (Json.member "cached" r) Json.to_bool with
    | Some true -> incr cached
    | Some false -> ()
    | None -> Alcotest.fail "predict response lacks \"cached\""
  done;
  check Alcotest.int "99 of 100 responses from cache" 99 !cached;
  let s = Client.stats c in
  check Alcotest.int "stats hits" 99 (jint s [ "cache"; "predict"; "hits" ]);
  check Alcotest.int "stats misses" 1 (jint s [ "cache"; "predict"; "misses" ]);
  match Json.to_float (jpath s [ "cache"; "predict"; "hit_rate" ]) with
  | Some rate -> check Alcotest.bool "hit rate >= 99%" true (rate >= 0.99)
  | None -> Alcotest.fail "hit_rate missing"

(* ------------------------------------------------------------------ *)
(* serve_fd: a concurrent batch over a real pipe answers in request
   order, byte-identical to a sequential client, with blank lines
   skipped and the malformed line answered in place. *)

let batch_requests =
  [
    predict_req;
    {|{"id":2,"kind":"parse","source":"__kernel void f(__global float* a, int n) { a[0] = 1.0f; }"}|};
    "definitely not json";
    {|{"id":4,"kind":"predict","workload":"nn/nn"}|};
    {|{"id":5,"kind":"analyze","workload":"hotspot/hotspot"}|};
    {|{"id":6,"kind":"frobnicate"}|};
    {|{"id":7,"kind":"predict","workload":"hotspot/hotspot","pe":4}|};
  ]

let test_serve_fd_batch () =
  let seq = Client.create ~num_domains:0 () in
  let expected = List.map (Client.request_line seq) batch_requests in
  let r, w = Unix.pipe () in
  let wc = Unix.out_channel_of_descr w in
  List.iter (fun l -> output_string wc (l ^ "\n")) batch_requests;
  output_string wc "\n";
  (* trailing blank line: skipped *)
  close_out wc;
  let tmp = Filename.temp_file "flexcl_serve" ".ndjson" in
  let out = open_out tmp in
  let srv = Server.create ~num_domains:2 () in
  Server.serve_fd srv r out;
  close_out out;
  Unix.close r;
  let ic = open_in tmp in
  let got = ref [] in
  (try
     while true do
       got := input_line ic :: !got
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove tmp;
  let got = List.rev !got in
  check Alcotest.int "one response per request" (List.length batch_requests)
    (List.length got);
  List.iteri
    (fun i (want, have) ->
      check Alcotest.string (Printf.sprintf "response %d in order" i) want have)
    (List.combine expected got)

(* ------------------------------------------------------------------ *)
(* Failure semantics: framing, deadlines, admission, drain. Each test
   pins one taxon of DESIGN.md §12 deterministically; the probabilistic
   mix lives in the chaos harness (test_chaos.ml, `make chaos`). *)

(* run one raw byte stream through serve_fd, collect response lines *)
let serve_raw ?max_batch srv raw =
  let r, w = Unix.pipe () in
  let wc = Unix.out_channel_of_descr w in
  output_string wc raw;
  close_out wc;
  let tmp = Filename.temp_file "flexcl_serve" ".ndjson" in
  let out = open_out tmp in
  Server.serve_fd srv ?max_batch r out;
  close_out out;
  Unix.close r;
  let ic = open_in tmp in
  let got = ref [] in
  (try
     while true do
       got := input_line ic :: !got
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove tmp;
  List.rev !got

let first_code line =
  match Json.of_string line with
  | Error e -> Alcotest.failf "unparsable response %S (%s)" line e
  | Ok v -> (
      match Json.member "errors" v with
      | Some (Json.Arr (e :: _)) -> (
          match Option.bind (Json.member "code" e) Json.to_str with
          | Some c -> c
          | None -> Alcotest.failf "error without code: %s" line)
      | _ -> Alcotest.failf "response has no errors array: %s" line)

let response_ok line =
  match Json.of_string line with
  | Ok v -> Option.bind (Json.member "ok" v) Json.to_bool = Some true
  | Error _ -> false

let test_frame_errors () =
  let srv = Server.create ~num_domains:0 ~max_line_bytes:128 () in
  let oversized =
    {|{"id":1,"kind":"predict","pad":"|} ^ String.make 300 'x' ^ {|"}|}
  in
  let raw =
    String.concat ""
      [
        oversized ^ "\n";
        {|{"id":2,"kind":"stats"}|} ^ "\n";
        {|{"id":3,"kind":"sta|} (* stream dies mid-line *);
      ]
  in
  let got = serve_raw srv raw in
  check Alcotest.int "three frames, three responses" 3 (List.length got);
  (match got with
  | [ a; b; c ] ->
      check Alcotest.string "oversized line answers E-FRAME" "E-FRAME"
        (first_code a);
      check Alcotest.bool "stream resyncs after the oversized line" true
        (response_ok b);
      check Alcotest.string "EOF mid-line answers E-FRAME" "E-FRAME"
        (first_code c)
  | _ -> assert false);
  let s = Server.stats_json srv in
  check Alcotest.int "frame errors counted" 2
    (jint s [ "counters"; "requests.frame_error" ])

let test_deadline_expired () =
  let srv = Server.create ~num_domains:0 () in
  let req =
    {|{"id":1,"kind":"predict","workload":"nn/nn","deadline_ms":100}|}
  in
  let past = Unix.gettimeofday () -. 10.0 in
  (* admission-stage check (handle_line plans before computing) *)
  let resp = Server.handle_line ~arrival:past srv req in
  check Alcotest.string "expired budget answers E-DEADLINE" "E-DEADLINE"
    (first_code resp);
  (* compute-stage check (handle_value re-checks at dispatch) *)
  let resp2 =
    match Json.of_string req with
    | Ok v -> Json.to_string (Server.handle_value ~arrival:past srv v)
    | Error _ -> assert false
  in
  check Alcotest.string "compute-stage check also fires" "E-DEADLINE"
    (first_code resp2);
  let s = Server.stats_json srv in
  check Alcotest.int "deadline_expired counted" 2
    (jint s [ "counters"; "deadline_expired" ]);
  (* an ample budget sails through *)
  let ok = Server.handle_line srv req in
  check Alcotest.bool "unexpired deadline serves normally" true
    (response_ok ok)

let test_overload_shed () =
  (* one admission slot, three compute requests in one batch: admission
     happens when the batch is planned, release when it completes, so
     exactly the requests past the high-water mark shed *)
  let srv = Server.create ~num_domains:0 ~max_inflight:1 () in
  let req = {|{"id":1,"kind":"predict","workload":"nn/nn"}|} in
  let raw = String.concat "" [ req; "\n"; req; "\n"; req; "\n" ] in
  let got = serve_raw ~max_batch:8 srv raw in
  check Alcotest.int "three requests, three responses" 3 (List.length got);
  (match got with
  | [ a; b; c ] ->
      check Alcotest.bool "first request admitted" true (response_ok a);
      check Alcotest.string "second sheds E-OVERLOAD" "E-OVERLOAD"
        (first_code b);
      check Alcotest.string "third sheds E-OVERLOAD" "E-OVERLOAD"
        (first_code c);
      (* the shed carries a positive retry hint *)
      (match Json.of_string b with
      | Ok v -> (
          match
            Option.bind (Json.member "retry_after_ms" v) Json.to_int
          with
          | Some ms ->
              check Alcotest.bool "retry_after_ms > 0" true (ms > 0)
          | None -> Alcotest.fail "shed response lacks retry_after_ms")
      | Error _ -> assert false)
  | _ -> assert false);
  let s = Server.stats_json srv in
  check Alcotest.int "sheds counted" 2 (jint s [ "counters"; "shed" ]);
  (* slots released: a lone request is admitted again *)
  check Alcotest.bool "inflight released after the batch" true
    (response_ok (Server.handle_line srv req))

let test_shutdown_drain () =
  let srv = Server.create ~num_domains:0 () in
  let resp = Server.handle_line srv {|{"id":1,"kind":"shutdown"}|} in
  check Alcotest.bool "shutdown acknowledged" true (response_ok resp);
  check Alcotest.bool "server marked draining" true (Server.draining srv);
  let rejected =
    Server.handle_line srv {|{"id":2,"kind":"predict","workload":"nn/nn"}|}
  in
  check Alcotest.string "new work answers E-SHUTDOWN" "E-SHUTDOWN"
    (first_code rejected)

(* ------------------------------------------------------------------ *)
(* Single-flight under a miss storm: N clients racing the same cold
   fingerprint compute it exactly once; everyone else finds it warm. *)

let storm_barrier n =
  let m = Mutex.create () in
  let cv = Condition.create () in
  let arrived = ref 0 in
  fun () ->
    Mutex.lock m;
    incr arrived;
    if !arrived >= n then Condition.broadcast cv
    else
      while !arrived < n do
        Condition.wait cv m
      done;
    Mutex.unlock m

let test_single_flight_storm () =
  let c = Client.create ~num_domains:0 () in
  let n = 8 in
  let wait_all = storm_barrier n in
  let results = Array.make n "" in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            wait_all ();
            results.(i) <- Client.request_line c predict_req)
          ())
  in
  List.iter Thread.join threads;
  let cold = ref 0 in
  Array.iter
    (fun r ->
      check Alcotest.bool "storm response ok" true (response_ok r);
      match Json.of_string r with
      | Ok v -> (
          match Option.bind (Json.member "cached" v) Json.to_bool with
          | Some false -> incr cold
          | Some true -> ()
          | None -> Alcotest.fail "predict response lacks \"cached\"")
      | Error _ -> assert false)
    results;
  check Alcotest.int "exactly one racer computed" 1 !cold;
  let s = Client.stats c in
  check Alcotest.int "one predict-cache miss" 1
    (jint s [ "cache"; "predict"; "misses" ]);
  check Alcotest.int "everyone else hit" (n - 1)
    (jint s [ "cache"; "predict"; "hits" ])

(* Eviction racing an in-flight computation: the producer's slot can be
   recycled under it (capacity 1) without corrupting the cache — its
   value still lands, LRU size stays bounded. *)
let test_cache_eviction_during_flight () =
  let c = Cache.create ~capacity:1 () in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let state = ref `Init in
  let set s =
    Mutex.lock m;
    state := s;
    Condition.broadcast cv;
    Mutex.unlock m
  in
  let wait_for s =
    Mutex.lock m;
    while !state <> s do
      Condition.wait cv m
    done;
    Mutex.unlock m
  in
  let producer =
    Thread.create
      (fun () ->
        ignore
          (Cache.find_or_add c "hot" (fun () ->
               set `Producing;
               wait_for `Churned;
               42)))
      ()
  in
  wait_for `Producing;
  (* churn the single slot while "hot" is still being produced *)
  Cache.add c "cold1" 1;
  Cache.add c "cold2" 2;
  set `Churned;
  Thread.join producer;
  let s = Cache.stats c in
  check Alcotest.int "size bounded by capacity" 1 s.Cache.size;
  check
    Alcotest.(option int)
    "in-flight value landed intact" (Some 42) (Cache.find c "hot")

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "json: print goldens" `Quick test_json_print;
    Alcotest.test_case "json: parse goldens and rejections" `Quick
      test_json_parse;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    Alcotest.test_case "hash: separators and width" `Quick test_hash_separators;
    Alcotest.test_case "hash: launch fingerprint" `Quick
      test_launch_fingerprint;
    Alcotest.test_case "cache: LRU eviction and counters" `Quick test_cache_lru;
    Alcotest.test_case "metrics: counters and histograms" `Quick test_metrics;
    Alcotest.test_case "protocol: goldens for every kind" `Quick
      test_protocol_goldens;
    Alcotest.test_case "protocol: explore is deterministic" `Quick
      test_explore_deterministic;
    Alcotest.test_case "protocol: stats shape" `Quick test_stats_shape;
    Alcotest.test_case "protocol: predict trace round-trip and cache"
      `Quick test_predict_trace;
    Alcotest.test_case "protocol: trace on an inline-source predict" `Quick
      test_predict_trace_source_kernel;
    Alcotest.test_case "calibrated: response shape golden" `Quick
      test_calibrated_response_shape;
    Alcotest.test_case "calibrated: distinct cache entries, identical warm hits"
      `Quick test_calibrated_cache_distinct;
    Alcotest.test_case "calibrated: E-NOMODEL without a model" `Quick
      test_calibrated_without_model;
    Alcotest.test_case "fuzz: mutated and garbage requests" `Quick
      test_fuzz_requests;
    Alcotest.test_case "cache: 100 predicts hit >= 99%" `Quick
      test_cache_hit_rate;
    Alcotest.test_case "serve_fd: concurrent batch keeps order" `Quick
      test_serve_fd_batch;
    Alcotest.test_case "framing: oversized and truncated lines" `Quick
      test_frame_errors;
    Alcotest.test_case "deadline: wall-clock budget enforced" `Quick
      test_deadline_expired;
    Alcotest.test_case "admission: overload sheds with retry hint" `Quick
      test_overload_shed;
    Alcotest.test_case "drain: shutdown rejects new work" `Quick
      test_shutdown_drain;
    Alcotest.test_case "single-flight: miss storm computes once" `Quick
      test_single_flight_storm;
    Alcotest.test_case "cache: eviction during in-flight produce" `Quick
      test_cache_eviction_during_flight;
  ]
