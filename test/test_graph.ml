(* The kernel-graph layer: pipe frontend wiring, Gdef validation
   diagnostics (unbound / cycle / type-mismatch as typed codes), the
   graph estimate's degeneration to the single-kernel model on
   one-stage graphs (bitwise), explain-trace conservation on every
   pipeline workload x seeded feasible joint points, co-simulated
   ground truth vs the analytical estimate, and ranking identity of
   the staged joint DSE against the unstaged reference sweep. *)

module Gdef = Flexcl_graph.Gdef
module Graph = Flexcl_graph.Graph
module Cosim = Flexcl_graph.Cosim
module Pipelines = Flexcl_workloads.Pipelines
module Model = Flexcl_core.Model
module Analysis = Flexcl_core.Analysis
module Config = Flexcl_core.Config
module Trace = Flexcl_util.Trace
module Diag = Flexcl_util.Diag
module Launch = Flexcl_ir.Launch
module Prng = Flexcl_util.Prng

let device = Thelpers.virtex7
let bits = Int64.bits_of_float

let analyzed_of p =
  match Graph.analyze (Pipelines.graph p) with
  | Ok t -> t
  | Error ds ->
      Alcotest.failf "workload %s did not analyze: %s" p.Pipelines.name
        (Diag.render_all ds)

(* ------------------------------------------------------------------ *)
(* Gdef validation diagnostics *)

let stage name source launch = { Gdef.s_name = name; s_source = source; s_launch = launch }

let launch1 ?(n = 128) args =
  Launch.make ~global:(Launch.dim3 n) ~local:(Launch.dim3 32) ~args

let writer_src =
  {|
__kernel void w(pipe float ch, __global const float* a) {
  int gid = get_global_id(0);
  write_pipe(ch, a[gid]);
}
|}

let reader_src =
  {|
__kernel void r(pipe float ch, __global float* out) {
  int gid = get_global_id(0);
  float v = read_pipe(ch);
  out[gid] = v;
}
|}

let int_reader_src =
  {|
__kernel void r(pipe int ch, __global float* out) {
  int gid = get_global_id(0);
  int v = read_pipe(ch);
  out[gid] = (float)v;
}
|}

let wbuf = [ ("a", Launch.Buffer { length = 128; init = Launch.Random_floats 5 }) ]
let rbuf = [ ("out", Launch.Buffer { length = 128; init = Launch.Zeros }) ]

let chan ?(depth = 8) name (ps, pp) (cs, cp) =
  {
    Gdef.c_name = name;
    producer = { Gdef.e_stage = ps; e_param = pp };
    consumer = { Gdef.e_stage = cs; e_param = cp };
    depth;
  }

let two_stage ?(channels = [ chan "ch" ("w", "ch") ("r", "ch") ]) ?(reader = reader_src) () =
  {
    Gdef.g_name = "t";
    stages = [ stage "w" writer_src (launch1 wbuf); stage "r" reader (launch1 rbuf) ];
    channels;
  }

let codes_of = function
  | Ok _ -> []
  | Error ds -> List.map (fun (d : Diag.t) -> d.Diag.code) ds

let test_resolve_ok () =
  match Gdef.resolve (two_stage ()) with
  | Ok r ->
      Alcotest.(check (list string)) "topo order" [ "w"; "r" ] r.Gdef.order
  | Error ds -> Alcotest.failf "resolve failed: %s" (Diag.render_all ds)

let test_unbound_endpoint () =
  let g = two_stage ~channels:[ chan "ch" ("w", "ch") ("r", "nope") ] () in
  Alcotest.(check bool) "unbound code" true
    (List.mem Diag.Pipe_unbound (codes_of (Gdef.resolve g)))

let test_unwired_pipe () =
  let g = two_stage ~channels:[] () in
  Alcotest.(check bool) "unwired pipes diagnosed" true
    (List.mem Diag.Pipe_unbound (codes_of (Gdef.resolve g)))

let test_direction_violation () =
  (* wire the channel backwards: the reader as producer *)
  let g = two_stage ~channels:[ chan "ch" ("r", "ch") ("w", "ch") ] () in
  Alcotest.(check bool) "direction violation" true
    (List.mem Diag.Pipe_unbound (codes_of (Gdef.resolve g)))

let test_packet_mismatch () =
  let g = two_stage ~reader:int_reader_src () in
  Alcotest.(check bool) "type mismatch code" true
    (List.mem Diag.Pipe_mismatch (codes_of (Gdef.resolve g)))

let test_cycle_diagnosed () =
  let a_src =
    {|
__kernel void a(pipe float ab, pipe float ca) {
  float v = read_pipe(ca);
  write_pipe(ab, v);
}
|}
  and b_src =
    {|
__kernel void b(pipe float ab, pipe float bc) {
  float v = read_pipe(ab);
  write_pipe(bc, v);
}
|}
  and c_src =
    {|
__kernel void c(pipe float bc, pipe float ca) {
  float v = read_pipe(bc);
  write_pipe(ca, v);
}
|}
  in
  let g =
    {
      Gdef.g_name = "cycle";
      stages =
        [
          stage "a" a_src (launch1 []);
          stage "b" b_src (launch1 []);
          stage "c" c_src (launch1 []);
        ];
      channels =
        [
          chan "ab" ("a", "ab") ("b", "ab");
          chan "bc" ("b", "bc") ("c", "bc");
          chan "ca" ("c", "ca") ("a", "ca");
        ];
    }
  in
  Alcotest.(check bool) "cycle code" true
    (List.mem Diag.Pipe_cycle (codes_of (Gdef.resolve g)))

let test_bad_depth () =
  let g = two_stage ~channels:[ chan ~depth:0 "ch" ("w", "ch") ("r", "ch") ] () in
  Alcotest.(check bool) "zero depth rejected" true
    (List.mem Diag.Config_invalid (codes_of (Gdef.resolve g)))

let test_autowire () =
  match
    Gdef.of_program ~name:"auto" ~depth:4
      [ ("w", writer_src, launch1 wbuf); ("r", reader_src, launch1 rbuf) ]
  with
  | Ok g ->
      Alcotest.(check int) "one channel" 1 (List.length g.Gdef.channels);
      let c = List.hd g.Gdef.channels in
      Alcotest.(check string) "producer" "w" c.Gdef.producer.Gdef.e_stage;
      Alcotest.(check string) "consumer" "r" c.Gdef.consumer.Gdef.e_stage
  | Error ds -> Alcotest.failf "auto-wire failed: %s" (Diag.render_all ds)

let test_autowire_orphan () =
  match
    Gdef.of_program ~name:"orphan" ~depth:4 [ ("w", writer_src, launch1 wbuf) ]
  with
  | Ok _ -> Alcotest.fail "write-only pipe must not wire"
  | Error ds ->
      Alcotest.(check bool) "unbound" true
        (List.exists (fun (d : Diag.t) -> d.Diag.code = Diag.Pipe_unbound) ds)

(* ------------------------------------------------------------------ *)
(* Graph-of-one degenerates to the single-kernel model, bitwise *)

let test_single_stage_bitwise () =
  let src = Thelpers.sample_kernel_src in
  let g =
    {
      Gdef.g_name = "solo";
      stages = [ stage "solo" src Thelpers.sample_launch ];
      channels = [];
    }
  in
  let t =
    match Graph.analyze g with
    | Ok t -> t
    | Error ds -> Alcotest.failf "analyze: %s" (Diag.render_all ds)
  in
  let a = Graph.stage_analysis t "solo" in
  let cfg =
    {
      Config.default with
      Config.wg_size = Launch.wg_size Thelpers.sample_launch;
    }
  in
  let j = { Graph.stage_configs = [ ("solo", cfg) ]; depths = [] } in
  let gb = Graph.estimate device t j in
  let mb = Model.estimate device a cfg in
  Alcotest.(check bool) "cycles bitwise equal" true
    (bits gb.Graph.cycles = bits mb.Model.cycles);
  Alcotest.(check (float 0.0)) "no fill" 0.0 gb.Graph.fill;
  Alcotest.(check (float 0.0)) "no stall" 0.0 gb.Graph.stall;
  (* and the trace root recomposes the same value *)
  let _, tr = Graph.explain device t j in
  Alcotest.(check bool) "trace root bitwise" true
    (bits tr.Trace.cycles = bits gb.Graph.cycles);
  Alcotest.(check bool) "conservation" true (Result.is_ok (Trace.check tr))

(* ------------------------------------------------------------------ *)
(* Seeded feasible joint points on the bundled pipeline workloads *)

let seeded_joints t seed count =
  let stages = List.map fst t.Graph.stage_analyses in
  let channels = t.Graph.resolved.Gdef.graph.Gdef.channels in
  List.init count (fun i ->
      let h k = Prng.hash_mix seed (Prng.hash_mix i k) in
      let stage_configs =
        List.mapi
          (fun si s ->
            let a = Graph.stage_analysis t s in
            let pick xs salt = List.nth xs (abs (h (salt + si)) mod List.length xs) in
            ( s,
              {
                Config.wg_size = Launch.wg_size a.Analysis.launch;
                n_pe = pick [ 1; 2; 4 ] 11;
                n_cu = pick [ 1; 2 ] 23;
                wi_pipeline = pick [ true; false ] 37;
                comm_mode = Config.Pipeline_mode;
              } ))
          stages
      in
      let depths =
        List.mapi
          (fun ci (c : Gdef.channel) ->
            (c.Gdef.c_name, List.nth [ 1; 2; 8; 32 ] (abs (h (41 + ci)) mod 4)))
          channels
      in
      { Graph.stage_configs; depths })

let feasible_joints t seed count =
  List.filter (Graph.feasible device t) (seeded_joints t seed count)

let test_explain_conservation () =
  List.iter
    (fun p ->
      let t = analyzed_of p in
      let joints = Graph.default_joint t :: feasible_joints t 7 12 in
      Alcotest.(check bool)
        (p.Pipelines.name ^ " has feasible joints")
        true (joints <> []);
      List.iter
        (fun j ->
          let gb, tr = Graph.explain device t j in
          (match Trace.check tr with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: %s" p.Pipelines.name msg);
          Alcotest.(check bool) "root carries cycles bitwise" true
            (bits tr.Trace.cycles = bits gb.Graph.cycles);
          Alcotest.(check bool) "estimate = explain bitwise" true
            (bits (Graph.estimate device t j).Graph.cycles
            = bits gb.Graph.cycles);
          (* terms recompose: cycles = steady + fill + stall as summed
             by the same fold the checker uses *)
          Alcotest.(check bool) "terms recompose" true
            (bits gb.Graph.cycles
            = bits (0.0 +. gb.Graph.steady +. gb.Graph.fill +. gb.Graph.stall)))
        joints)
    Pipelines.all

let test_depth_monotone_stall () =
  (* shrinking every channel to depth 1 cannot reduce the stall term *)
  List.iter
    (fun p ->
      let t = analyzed_of p in
      let j = Graph.default_joint t in
      let shallow =
        { j with Graph.depths = List.map (fun (c, _) -> (c, 1)) j.Graph.depths }
      in
      let b0 = Graph.estimate device t j in
      let b1 = Graph.estimate device t shallow in
      Alcotest.(check bool) "stall grows when FIFOs shrink" true
        (b1.Graph.stall >= b0.Graph.stall))
    Pipelines.all

let test_cosim_accuracy () =
  List.iter
    (fun p ->
      let t = analyzed_of p in
      let j = Graph.default_joint t in
      let est = Graph.estimate device t j in
      let sim = Cosim.run ~seed:42 device t j in
      Alcotest.(check bool)
        (Printf.sprintf "%s: cosim ran" p.Pipelines.name)
        true (sim.Cosim.cycles > 0.0);
      Alcotest.(check bool) "per-stage runs recorded" true
        (List.length sim.Cosim.per_stage
        = List.length t.Graph.stage_analyses);
      let err = 100.0 *. Float.abs (est.Graph.cycles -. sim.Cosim.cycles) /. sim.Cosim.cycles in
      (* the analytical estimate must stay in the same regime as the
         co-simulated ground truth (the single-kernel model's own
         accuracy band is ~10-20%; the graph composition adds fill and
         stall approximations on top) *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: est %.0f vs cosim %.0f (%.1f%% err) within 60%%"
           p.Pipelines.name est.Graph.cycles sim.Cosim.cycles err)
        true (err < 60.0))
    Pipelines.all

let test_cosim_deterministic () =
  let t = analyzed_of Pipelines.produce_filter_consume in
  let j = Graph.default_joint t in
  let a = Cosim.run ~seed:7 device t j and b = Cosim.run ~seed:7 device t j in
  Alcotest.(check bool) "same seed, same cycles" true
    (bits a.Cosim.cycles = bits b.Cosim.cycles)

(* ------------------------------------------------------------------ *)
(* Joint DSE: staged sweep ranks identically to the unstaged reference *)

let small_jspace =
  {
    Graph.pe_counts = [ 1; 2 ];
    cu_counts = [ 1; 2 ];
    pipeline_choices = [ true ];
    comm_modes = [ Config.Pipeline_mode ];
    depth_choices = [ 1; 16 ];
  }

let test_joint_dse_ranking_identity () =
  List.iter
    (fun p ->
      let t = analyzed_of p in
      let staged = Graph.explore ~num_domains:2 device t small_jspace in
      let reference = Graph.explore_reference device t small_jspace in
      Alcotest.(check int)
        (p.Pipelines.name ^ ": same point count")
        (List.length reference) (List.length staged);
      List.iter2
        (fun (s : Graph.jevaluated) (r : Graph.jevaluated) ->
          Alcotest.(check int) "same joint" 0
            (Graph.compare_joint s.Graph.joint r.Graph.joint);
          Alcotest.(check bool) "bitwise cycles" true
            (bits s.Graph.jcycles = bits r.Graph.jcycles))
        staged reference)
    Pipelines.all

let test_best_matches_explore () =
  let t = analyzed_of Pipelines.blur_sharpen in
  match
    (Graph.best ~num_domains:0 device t small_jspace,
     Graph.explore device t small_jspace)
  with
  | Some (b, stats), hd :: _ ->
      Alcotest.(check int) "same winner" 0
        (Graph.compare_joint b.Graph.joint hd.Graph.joint);
      Alcotest.(check bool) "bitwise winner cycles" true
        (bits b.Graph.jcycles = bits hd.Graph.jcycles);
      Alcotest.(check bool) "accounting adds up" true
        (stats.Graph.jevaluated + stats.Graph.jpruned = stats.Graph.jtotal)
  | None, _ -> Alcotest.fail "best found nothing"
  | _, [] -> Alcotest.fail "explore found nothing"

(* Placement-aware joint DSE (DESIGN.md §15): the staged placed sweep
   ranks identically to the unstaged reference, bitwise, and degenerates
   to the plain joint sweep on a 1-channel device. *)

let placed_devices = [ Thelpers.virtex7; Flexcl_device.Device.u280 ]

let test_placed_dse_ranking_identity () =
  List.iter
    (fun dev ->
      let t = analyzed_of Pipelines.blur_sharpen in
      let staged = Graph.explore_placed dev t small_jspace in
      let reference = Graph.explore_placed_reference dev t small_jspace in
      let dname = dev.Flexcl_device.Device.name in
      Alcotest.(check int)
        (dname ^ ": same point count")
        (List.length reference) (List.length staged);
      List.iter2
        (fun (s : Graph.pevaluated) (r : Graph.pevaluated) ->
          Alcotest.(check int) "same joint" 0
            (Graph.compare_joint s.Graph.pjoint r.Graph.pjoint);
          Alcotest.(check bool) "same placements" true
            (s.Graph.placements = r.Graph.placements);
          Alcotest.(check bool) "bitwise cycles" true
            (bits s.Graph.pcycles = bits r.Graph.pcycles))
        staged reference;
      (* on a 1-channel device every resolved placement is empty and the
         ranking is the plain joint sweep's *)
      if dev.Flexcl_device.Device.dram.Flexcl_dram.Dram.n_channels = 1 then
        List.iter2
          (fun (s : Graph.pevaluated) (p : Graph.jevaluated) ->
            Alcotest.(check bool) "all placements empty" true
              (List.for_all (fun (_, pl) -> pl = []) s.Graph.placements);
            Alcotest.(check bool) "degenerates to explore" true
              (bits s.Graph.pcycles = bits p.Graph.jcycles
              && Graph.compare_joint s.Graph.pjoint p.Graph.joint = 0))
          staged
          (Graph.explore dev t small_jspace))
    placed_devices

let test_best_placed_matches_explore_placed () =
  List.iter
    (fun dev ->
      let t = analyzed_of Pipelines.blur_sharpen in
      match
        (Graph.best_placed dev t small_jspace,
         Graph.explore_placed dev t small_jspace)
      with
      | Some (b, stats), hd :: _ ->
          Alcotest.(check int) "same winner" 0
            (Graph.compare_joint b.Graph.pjoint hd.Graph.pjoint);
          Alcotest.(check bool) "same placements" true
            (b.Graph.placements = hd.Graph.placements);
          Alcotest.(check bool) "bitwise winner cycles" true
            (bits b.Graph.pcycles = bits hd.Graph.pcycles);
          Alcotest.(check bool) "accounting adds up" true
            (stats.Graph.jevaluated + stats.Graph.jpruned = stats.Graph.jtotal)
      | None, _ -> Alcotest.fail "best_placed found nothing"
      | _, [] -> Alcotest.fail "explore_placed found nothing")
    placed_devices

let test_placed_dse_never_worse_than_unplaced () =
  (* co-optimizing placement can only improve the best point *)
  let dev = Flexcl_device.Device.u280 in
  let t = analyzed_of Pipelines.blur_sharpen in
  match (Graph.explore_placed dev t small_jspace, Graph.explore dev t small_jspace) with
  | ph :: _, jh :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "placed %.0f <= unplaced %.0f" ph.Graph.pcycles
           jh.Graph.jcycles)
        true
        (ph.Graph.pcycles <= jh.Graph.jcycles +. 1e-9)
  | _ -> Alcotest.fail "empty sweep"

let test_lower_bound_sound () =
  List.iter
    (fun p ->
      let t = analyzed_of p in
      List.iter
        (fun j ->
          let lb = Graph.lower_bound device t j in
          let c = Graph.cycles device t j in
          Alcotest.(check bool)
            (Printf.sprintf "%s: bound %.0f <= cycles %.0f" p.Pipelines.name lb c)
            true
            (lb <= c +. (1e-9 *. Float.max c 1.0)))
        (Graph.default_joint t :: feasible_joints t 13 8))
    Pipelines.all

(* ------------------------------------------------------------------ *)
(* Random DAGs: resolve is total (validates or diagnoses, never raises) *)

let qcheck_random_graphs =
  let gen =
    QCheck.make
      ~print:(fun (n_stages, wiring, depth) ->
        Printf.sprintf "stages=%d wiring=%d depth=%d" n_stages wiring depth)
      QCheck.Gen.(triple (int_range 1 4) (int_range 0 1000) (int_range (-1) 9))
  in
  QCheck.Test.make ~name:"random graphs resolve or diagnose" ~count:120 gen
    (fun (n_stages, wiring, depth) ->
      (* a seeded generator of plausible-and-broken graphs: each stage
         reads pipe [p(i-1)] (except maybe the first) and writes pipe
         [p i]; wiring bits decide which channels exist and whether an
         endpoint is misnamed, so many instances are deliberately
         invalid *)
      let h i k = Prng.hash_mix wiring (Prng.hash_mix i k) in
      let src i =
        let reads = i > 0 in
        let writes = i < n_stages - 1 || h i 1 mod 3 = 0 in
        Printf.sprintf
          {|
__kernel void s%d(%s__global float* buf) {
  int gid = get_global_id(0);
  %s
  %s
  buf[gid] = buf[gid] + 1.0f;
}
|}
          i
          ((if reads then Printf.sprintf "pipe float p%d, " (i - 1) else "")
          ^ if writes then Printf.sprintf "pipe float p%d, " i else "")
          (if reads then Printf.sprintf "float v%d = read_pipe(p%d);" i (i - 1)
           else "")
          (if writes then Printf.sprintf "write_pipe(p%d, 1.5f);" i else "")
      in
      let stages =
        List.init n_stages (fun i ->
            stage
              (Printf.sprintf "s%d" i)
              (src i)
              (launch1
                 [
                   ( "buf",
                     Launch.Buffer { length = 128; init = Launch.Random_floats (i + 1) } );
                 ]))
      in
      let channels =
        List.concat
          (List.init (max 0 (n_stages - 1)) (fun i ->
               if h i 2 mod 4 = 0 then [] (* drop a channel: unbound *)
               else
                 [
                   chan ~depth
                     (Printf.sprintf "p%d" i)
                     (Printf.sprintf "s%d" i, Printf.sprintf "p%d" i)
                     ( Printf.sprintf "s%d" (i + 1),
                       Printf.sprintf "p%d"
                         (if h i 3 mod 5 = 0 then 9 (* misname *) else i) );
                 ]))
      in
      let g = { Gdef.g_name = "rand"; stages; channels } in
      match Gdef.resolve g with
      | Ok r -> List.length r.Gdef.order = n_stages
      | Error ds -> ds <> [] && List.for_all Diag.is_error ds)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "two-stage graph resolves" `Quick test_resolve_ok;
    Alcotest.test_case "unbound endpoint diagnosed" `Quick test_unbound_endpoint;
    Alcotest.test_case "unwired pipe diagnosed" `Quick test_unwired_pipe;
    Alcotest.test_case "direction violation diagnosed" `Quick test_direction_violation;
    Alcotest.test_case "packet mismatch diagnosed" `Quick test_packet_mismatch;
    Alcotest.test_case "channel cycle diagnosed" `Quick test_cycle_diagnosed;
    Alcotest.test_case "non-positive depth rejected" `Quick test_bad_depth;
    Alcotest.test_case "auto-wiring by pipe name" `Quick test_autowire;
    Alcotest.test_case "auto-wiring flags orphans" `Quick test_autowire_orphan;
    Alcotest.test_case "graph of one = Model.estimate (bitwise)" `Quick
      test_single_stage_bitwise;
    Alcotest.test_case "explain conservation on workloads x joints" `Quick
      test_explain_conservation;
    Alcotest.test_case "stall monotone in shrinking depth" `Quick
      test_depth_monotone_stall;
    Alcotest.test_case "cosim vs analytical accuracy" `Slow test_cosim_accuracy;
    Alcotest.test_case "cosim deterministic" `Slow test_cosim_deterministic;
    Alcotest.test_case "joint DSE ranking identity" `Slow
      test_joint_dse_ranking_identity;
    Alcotest.test_case "best matches explore head" `Slow test_best_matches_explore;
    Alcotest.test_case "placed DSE ranking identity" `Slow
      test_placed_dse_ranking_identity;
    Alcotest.test_case "best_placed matches explore_placed head" `Slow
      test_best_placed_matches_explore_placed;
    Alcotest.test_case "placement co-optimization never worse" `Slow
      test_placed_dse_never_worse_than_unplaced;
    Alcotest.test_case "graph lower bound sound" `Quick test_lower_bound_sound;
    QCheck_alcotest.to_alcotest qcheck_random_graphs;
  ]
