(* Golden regression table: the best default-space design point and its
   full-precision cycle count per bundled workload, pinned in
   test/goldens/cycles.golden. A model change that moves any optimum —
   even by one ulp — fails here with a per-line diff; if the movement is
   intended, regenerate with `make promote` and commit the diff. *)

let check = Alcotest.check

(* `dune runtest` runs with cwd = the build's test directory (where the
   dune deps stanza staged the goldens); a bare `dune exec
   test/test_main.exe` runs from the project root — accept both. *)
let golden_path =
  let candidates =
    [
      Filename.concat "goldens" "cycles.golden";
      Filename.concat (Filename.concat "test" "goldens") "cycles.golden";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_golden_cycles () =
  let pinned =
    read_lines golden_path
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let current = List.map Gen.golden_line (Gen.golden_cycles_rows ()) in
  check Alcotest.int "golden row count" (List.length pinned)
    (List.length current);
  List.iter2
    (fun expect got -> check Alcotest.string "golden row" expect got)
    pinned current

let test_golden_file_well_formed () =
  (* every data line is "workload | config | float", and workloads appear
     in corpus order with no duplicates *)
  let data =
    read_lines golden_path |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  check Alcotest.bool "non-empty table" true (List.length data > 10);
  let names =
    List.map
      (fun line ->
        match String.split_on_char '|' line with
        | [ name; _cfg; cycles ] ->
            (match float_of_string_opt (String.trim cycles) with
            | Some c when Float.is_finite c && c > 0.0 -> ()
            | _ -> Alcotest.failf "bad cycles in %S" line);
            String.trim name
        | _ -> Alcotest.failf "malformed golden line %S" line)
      data
  in
  check Alcotest.int "no duplicate workloads"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let suite =
  [
    Alcotest.test_case "golden file is well-formed" `Quick
      test_golden_file_well_formed;
    Alcotest.test_case "best point per workload matches cycles.golden" `Slow
      test_golden_cycles;
  ]
