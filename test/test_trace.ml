(* The cycle-attribution trace layer: Trace data-structure unit tests,
   exact recomposition of [Model.explain] against [Model.estimate], and
   the foregrounded conservation property — every bundled workload ×
   seeded random feasible configs × both communication modes × every
   single-switch ablation of [Model.options]. *)

module Trace = Flexcl_util.Trace
module Json = Flexcl_util.Json
module Prng = Flexcl_util.Prng
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Analysis = Flexcl_core.Analysis
module Space = Flexcl_dse.Space
module Explore = Flexcl_dse.Explore
module Workload = Flexcl_workloads.Workload
module Launch = Flexcl_ir.Launch

let device = Thelpers.virtex7

(* ------------------------------------------------------------------ *)
(* Trace data structure *)

let sample_trace () =
  Trace.node ~eq:"Eq.0" "root"
    [
      Trace.leaf ~eq:"Eq.1" "a" 2.5 ~notes:[ ("ops", 3.0) ];
      Trace.node "b" [ Trace.leaf "b1" 1.0; Trace.leaf "b2" 0.5 ];
    ]

let test_node_sums () =
  let t = sample_trace () in
  Alcotest.(check (float 0.0)) "root sums children" 4.0 t.Trace.cycles;
  Alcotest.(check (float 0.0)) "total descends to leaves" 4.0 (Trace.total t);
  Alcotest.(check bool) "conservation holds" true
    (Result.is_ok (Trace.check t))

let test_check_catches_corruption () =
  let bad =
    Trace.node_at "root" 10.0 [ Trace.leaf "a" 1.0; Trace.leaf "b" 2.0 ]
  in
  match Trace.check bad with
  | Ok () -> Alcotest.fail "corrupted node passed the conservation check"
  | Error msg ->
      Alcotest.(check bool) "message names the node" true
        (Thelpers.contains msg "root")

let test_check_tolerance () =
  (* a 1-ulp discrepancy must pass; node_at with a value off by far less
     than the 1e-6 relative tolerance *)
  let t =
    Trace.node_at "root" (3.0 +. 1e-12) [ Trace.leaf "a" 1.0; Trace.leaf "b" 2.0 ]
  in
  Alcotest.(check bool) "ulp noise tolerated" true (Result.is_ok (Trace.check t))

let test_scale () =
  let t = Trace.scale 3.0 (sample_trace ()) in
  Alcotest.(check (float 1e-9)) "scaled root" 12.0 t.Trace.cycles;
  Alcotest.(check bool) "scaling preserves conservation" true
    (Result.is_ok (Trace.check t))

let test_find () =
  let t = sample_trace () in
  (match Trace.find t "b2" with
  | Some n -> Alcotest.(check (float 0.0)) "found leaf" 0.5 n.Trace.cycles
  | None -> Alcotest.fail "b2 not found");
  Alcotest.(check bool) "missing name" true (Trace.find t "zzz" = None)

let test_render () =
  let s = Trace.render (sample_trace ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " rendered") true (Thelpers.contains s needle))
    [ "root"; "[Eq.0]"; "b1"; "ops=3"; "└─" ]

let test_json_round_trip () =
  let t = sample_trace () in
  let s = Json.to_string (Trace.to_json t) in
  match Json.of_string s with
  | Error e -> Alcotest.fail ("printed trace does not parse: " ^ e)
  | Ok j -> (
      match Trace.of_json j with
      | Error e -> Alcotest.fail ("of_json failed: " ^ e)
      | Ok t' ->
          Alcotest.(check bool) "round-trip preserves the tree" true (t = t');
          Alcotest.(check string) "re-printing is byte-identical" s
            (Json.to_string (Trace.to_json t')))

let test_json_rejects_garbage () =
  List.iter
    (fun (label, j) ->
      match Trace.of_json j with
      | Ok _ -> Alcotest.fail (label ^ ": accepted malformed trace")
      | Error _ -> ())
    [
      ("not an object", Json.Num 3.0);
      ("missing name", Json.Obj [ ("cycles", Json.Num 1.0) ]);
      ("missing cycles", Json.Obj [ ("name", Json.Str "x") ]);
      ( "non-number note",
        Json.Obj
          [
            ("name", Json.Str "x");
            ("cycles", Json.Num 1.0);
            ("notes", Json.Obj [ ("k", Json.Str "v") ]);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Explain on the sample kernel: exact recomposition, determinism *)

let explain_modes () =
  let analysis = Thelpers.sample_analysis () in
  let base = { Config.default with Config.wg_size = 64 } in
  List.map
    (fun mode -> Model.explain device analysis { base with Config.comm_mode = mode })
    [ Config.Barrier_mode; Config.Pipeline_mode ]

let test_explain_matches_estimate () =
  let analysis = Thelpers.sample_analysis () in
  let base = { Config.default with Config.wg_size = 64 } in
  List.iter
    (fun mode ->
      let cfg = { base with Config.comm_mode = mode } in
      let b = Model.estimate device analysis cfg in
      let b', tr = Model.explain device analysis cfg in
      Alcotest.(check (float 0.0)) "explain breakdown agrees" b.Model.cycles
        b'.Model.cycles;
      Alcotest.(check (float 0.0)) "trace root carries the prediction"
        b.Model.cycles tr.Trace.cycles)
    [ Config.Barrier_mode; Config.Pipeline_mode ]

let test_explain_conserves () =
  List.iter
    (fun (_, tr) ->
      match Trace.check tr with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    (explain_modes ())

let test_explain_deterministic () =
  let once () =
    List.map (fun (_, tr) -> Json.to_string (Trace.to_json tr)) (explain_modes ())
  in
  List.iter2
    (Alcotest.(check string) "repeated explain is byte-identical")
    (once ()) (once ())

let test_explain_has_schedule_detail () =
  List.iter
    (fun ((_ : Model.breakdown), tr) ->
      Alcotest.(check bool) "per-block leaves present" true
        (Trace.find tr "block b0" <> None);
      Alcotest.(check bool) "PE depth node present" true
        (Trace.find tr "PE depth (D_comp^PE)" <> None))
    (explain_modes ())

(* ------------------------------------------------------------------ *)
(* Foregrounded conservation property.

   For every bundled Rodinia/PolyBench workload, sample seeded random
   feasible configs across the default design space, alternate the
   communication mode deterministically, and assert on every explain:
   - the trace root carries exactly [breakdown.cycles],
   - every internal node's children sum to it (Trace.check),
   - the schedule-ceiling leaf stays within one cycle per round (the
     ceil of Eq. 1's region latency — a drift detector for the
     region-trace recursion).
   Every [ablate_every]-th sample additionally re-runs under each
   single-switch ablation of [Model.options]. *)

(* the single-switch ablations live in the shared test/gen.ml *)
let ablations = Gen.ablations

let check_one ?(device = device) ~label ~options analysis cfg =
  let b, tr = Model.explain ~options device analysis cfg in
  if Float.abs (tr.Trace.cycles -. b.Model.cycles)
     > 1e-9 *. Float.max 1.0 (Float.abs b.Model.cycles)
  then
    Alcotest.failf "%s: root %.17g but breakdown.cycles %.17g" label
      tr.Trace.cycles b.Model.cycles;
  (match Trace.check tr with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" label e);
  (* ceiling drift: the schedule-ceiling leaf is [rounds × gap] with
     gap ∈ [0, 1); recover gap through the scaled depth node *)
  match (Trace.find tr "PE depth (D_comp^PE)", b.Model.depth_pe) with
  | Some depth_node, depth_pe when depth_pe > 0 && depth_node.Trace.cycles > 0.0
    -> (
      match
        List.find_opt
          (fun (c : Trace.t) -> c.Trace.name = "schedule ceiling")
          depth_node.Trace.children
      with
      | None -> Alcotest.failf "%s: depth node lost its ceiling leaf" label
      | Some ceil_leaf ->
          let gap =
            ceil_leaf.Trace.cycles *. float_of_int depth_pe
            /. depth_node.Trace.cycles
          in
          if gap < -1e-9 || gap >= 1.0 +. 1e-9 then
            Alcotest.failf "%s: schedule ceiling gap %.17g outside [0, 1)"
              label gap)
  | _ -> ()

let conservation_on_workload ~samples ~ablate_every (w : Workload.t) =
  let name = Workload.name w in
  match Analysis.of_source_result w.Workload.source w.Workload.launch with
  | Error _ -> Alcotest.failf "%s: workload failed to analyze" name
  | Ok analysis ->
      let n_wi = Launch.n_work_items w.Workload.launch in
      let space = Space.default ~total_work_items:n_wi in
      let feasible = Space.feasible_points device analysis space in
      if feasible = [] then Alcotest.failf "%s: empty feasible space" name;
      let pts = Array.of_list feasible in
      let rng = Prng.create (Hashtbl.hash name) in
      for i = 0 to samples - 1 do
        let cfg = Prng.choose rng pts in
        (* force both modes to appear regardless of the draw *)
        let cfg =
          {
            cfg with
            Config.comm_mode =
              (if i mod 2 = 0 then Config.Barrier_mode else Config.Pipeline_mode);
          }
        in
        (* reuse the sweep-wide memoized re-analysis: [Model.explain]
           would otherwise re-run the interpreter per sample *)
        let analysis = Explore.analysis_for analysis cfg.Config.wg_size in
        let label = Printf.sprintf "%s sample %d (%s)" name i
            (Config.to_string cfg)
        in
        check_one ~label ~options:Model.default_options analysis cfg;
        if i mod ablate_every = 0 then
          List.iter
            (fun (aname, options) ->
              check_one ~label:(label ^ " ablation " ^ aname) ~options analysis
                cfg)
            ablations
      done

let test_conservation_all_workloads () =
  let workloads = Gen.all_workloads in
  Alcotest.(check bool) "bundled workloads present" true (List.length workloads > 10);
  List.iter (conservation_on_workload ~samples:24 ~ablate_every:8) workloads

(* Deep sampling on two representative workloads (one per suite) brings
   the per-kernel draw count to the ~200 the conservation property is
   calibrated for, without scanning the whole corpus at that depth. *)
let test_conservation_deep () =
  let deep = [ "backprop/layer"; "gemm/gemm" ] in
  let workloads =
    List.filter (fun w -> List.mem (Workload.name w) deep) Gen.all_workloads
  in
  Alcotest.(check bool) "deep targets found" true (List.length workloads > 0);
  List.iter (conservation_on_workload ~samples:200 ~ablate_every:10) workloads

(* Conservation over the channel-roofline node (DESIGN.md §15): on
   multi-channel devices the explain trace either embeds the winning
   "memory (channel roofline)" subtree (whose per-channel children sum to
   the roofline) or records the losing roofline as a 0-cycle leaf; either
   way [Trace.check] must hold for every workload × device × placement. *)
let test_conservation_hbm_placements () =
  let devices = [ Flexcl_device.Device.ku060_2ddr; Flexcl_device.Device.u280 ] in
  let workloads = [ "bfs/bfs_1"; "mvt/mvt"; "gemm/gemm"; "hotspot/hotspot" ] in
  List.iter
    (fun device ->
      let n_channels =
        device.Flexcl_device.Device.dram.Flexcl_dram.Dram.n_channels
      in
      List.iter
        (fun name ->
          let w = Gen.find_workload name in
          let a0 = Analysis.of_source w.Workload.source w.Workload.launch in
          let buffers = Launch.buffer_names a0.Analysis.launch in
          let rng =
            Prng.create (Hashtbl.hash (name, device.Flexcl_device.Device.name))
          in
          let seeded_placement () =
            List.filter_map
              (fun b ->
                if Prng.int rng 2 = 0 then None
                else Some (b, Prng.int rng n_channels))
              buffers
          in
          let placements =
            [ []; Launch.round_robin_placement a0.Analysis.launch ~n_channels ]
            @ List.init 3 (fun _ -> seeded_placement ())
          in
          let n_wi = Launch.n_work_items w.Workload.launch in
          let space = Space.default ~total_work_items:n_wi in
          let feasible = Space.feasible_points device a0 space in
          if feasible = [] then Alcotest.failf "%s: empty feasible space" name;
          let pts = Array.of_list feasible in
          List.iteri
            (fun pi placement ->
              let a =
                if placement = [] then a0
                else Analysis.with_placement a0 placement
              in
              for i = 0 to 5 do
                let cfg = Prng.choose rng pts in
                let cfg =
                  {
                    cfg with
                    Config.comm_mode =
                      (if i mod 2 = 0 then Config.Barrier_mode
                       else Config.Pipeline_mode);
                  }
                in
                let a =
                  if cfg.Config.wg_size = Launch.wg_size a.Analysis.launch then a
                  else Analysis.with_wg_size a cfg.Config.wg_size
                in
                let label =
                  Printf.sprintf "%s@%s placement %d sample %d (%s)" name
                    device.Flexcl_device.Device.name pi i (Config.to_string cfg)
                in
                check_one ~device ~label ~options:Model.default_options a cfg;
                (* the roofline term is visible in the trace, win or lose *)
                let _, tr = Model.explain device a cfg in
                Alcotest.(check bool)
                  (label ^ ": roofline node present") true
                  (Trace.find tr "memory (channel roofline)" <> None
                  || Trace.find tr "channel roofline transfers" <> None
                  || Trace.find tr "channel roofline (not binding)" <> None)
              done)
            placements)
        workloads)
    devices

let suite =
  [
    Alcotest.test_case "node sums children" `Quick test_node_sums;
    Alcotest.test_case "check catches corruption" `Quick test_check_catches_corruption;
    Alcotest.test_case "check tolerates ulp noise" `Quick test_check_tolerance;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "explain matches estimate" `Quick test_explain_matches_estimate;
    Alcotest.test_case "explain conserves cycles" `Quick test_explain_conserves;
    Alcotest.test_case "explain is deterministic" `Quick test_explain_deterministic;
    Alcotest.test_case "explain has schedule detail" `Quick test_explain_has_schedule_detail;
    Alcotest.test_case "conservation across all workloads" `Slow
      test_conservation_all_workloads;
    Alcotest.test_case "conservation deep sampling" `Slow test_conservation_deep;
    Alcotest.test_case "conservation on HBM devices x placements" `Slow
      test_conservation_hbm_placements;
  ]
