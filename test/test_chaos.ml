(* Chaos harness for the serve subsystem (ISSUE 6e; run via `make chaos`
   under a hard `timeout`, outside the tier-1 suite).

   Seeded trials mix malformed frames, oversized lines, mid-request
   disconnects, deadline storms, overload bursts and injected worker
   panics, against both the in-process entry points and a real
   Unix-domain socket server with worker domains. Invariants:

   - the server never hangs (every client read is timeout-bounded, and
     the whole binary runs under `timeout`);
   - the server never crashes (later phases keep talking to the same
     process; the binary itself exiting 0 is the proof);
   - every complete request line gets exactly one well-formed response:
     ok:true, or ok:false with a structured E-* code — a documented
     refusal (E-FRAME / E-DEADLINE / E-OVERLOAD / E-SHUTDOWN /
     E-INTERNAL), per DESIGN.md §12. *)

module Json = Flexcl_util.Json
module Prng = Flexcl_util.Prng
module Pool = Flexcl_util.Pool
module Server = Flexcl_server.Server

let trials = ref 0
let failures = ref 0
let bump = ref (fun n -> trials := !trials + n)
let trial ?(n = 1) () = !bump n

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      prerr_endline ("CHAOS FAIL: " ^ s))
    fmt

(* thread-safe counters once the socket phases start *)
let counter_mutex = Mutex.create ()

let () =
  bump :=
    fun n ->
      Mutex.lock counter_mutex;
      trials := !trials + n;
      Mutex.unlock counter_mutex

(* ------------------------------------------------------------------ *)
(* Response discipline *)

let response_code line =
  (* Some code for a refusal, None for ok:true; fails the run on
     anything that is not a well-formed response *)
  match Json.of_string line with
  | Error e ->
      fail "unparsable response %S (%s)" line e;
      Some "unparsable"
  | Ok v -> (
      match Option.bind (Json.member "ok" v) Json.to_bool with
      | Some true -> None
      | Some false -> (
          match Json.member "errors" v with
          | Some (Json.Arr (e :: _)) -> (
              match Option.bind (Json.member "code" e) Json.to_str with
              | Some c when String.length c > 2 && String.sub c 0 2 = "E-" ->
                  Some c
              | _ ->
                  fail "refusal without E-* code: %s" line;
                  Some "missing-code")
          | _ ->
              fail "ok:false without errors: %s" line;
              Some "missing-errors")
      | None ->
          fail "response without \"ok\": %s" line;
          Some "missing-ok")

let expect_ok line =
  match response_code line with
  | None -> ()
  | Some c -> fail "expected ok:true, got %s: %s" c line

let expect_code want line =
  match response_code line with
  | Some c when c = want -> ()
  | Some c -> fail "expected %s, got %s: %s" want c line
  | None -> fail "expected %s, got ok:true: %s" want line

let expect_any line = ignore (response_code line)

(* ------------------------------------------------------------------ *)
(* Request material *)

let valid_requests =
  [|
    {|{"id":1,"kind":"predict","workload":"nn/nn","device":"v7"}|};
    {|{"id":2,"kind":"parse","workload":"hotspot/hotspot"}|};
    {|{"id":3,"kind":"analyze","workload":"nn/nn","pe":2}|};
    {|{"id":4,"kind":"stats"}|};
    {|{"id":5,"kind":"predict","workload":"hotspot/hotspot","pe":4}|};
  |]

let panic_request = {|{"id":66,"kind":"panic"}|}

let deadline_request =
  {|{"id":9,"kind":"predict","workload":"nn/nn","pe":2,"cu":2,"deadline_ms":0.01}|}

(* printable garbage, newline-free so it stays one frame *)
let garbage rng =
  String.init
    (1 + Prng.int rng 60)
    (fun _ ->
      match Char.chr (32 + Prng.int rng 95) with '\n' -> '?' | c -> c)

(* ------------------------------------------------------------------ *)
(* Phase 1: in-process storm against handle_line (sequential server) *)

let phase_inprocess rng =
  let srv = Server.create ~num_domains:0 ~cache_capacity:32 () in
  for _ = 1 to 256 do
    trial ();
    match Prng.int rng 4 with
    | 0 -> expect_ok (Server.handle_line srv (Prng.choose rng valid_requests))
    | 1 -> expect_code "E-USAGE" (Server.handle_line srv (garbage rng))
    | 2 ->
        (* deadline storm: arrival firmly in the past *)
        let past = Unix.gettimeofday () -. (1.0 +. Prng.float rng 10.0) in
        expect_code "E-DEADLINE"
          (Server.handle_line ~arrival:past srv
             {|{"id":7,"kind":"analyze","workload":"nn/nn","deadline_ms":250}|})
    | _ ->
        expect_code "E-USAGE"
          (Server.handle_line srv {|{"id":8,"kind":"warp"}|})
  done

(* ------------------------------------------------------------------ *)
(* Phase 2: framing storm through serve_fd on a bounded reader *)

let serve_raw srv raw =
  let r, w = Unix.pipe () in
  let wc = Unix.out_channel_of_descr w in
  output_string wc raw;
  close_out wc;
  let tmp = Filename.temp_file "flexcl_chaos" ".ndjson" in
  let out = open_out tmp in
  Server.serve_fd srv r out;
  close_out out;
  Unix.close r;
  let ic = open_in tmp in
  let got = ref [] in
  (try
     while true do
       got := input_line ic :: !got
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove tmp;
  List.rev !got

type piece = {
  bytes : string;
  expect : [ `Ok | `Code of string | `One_of of string list | `Nothing ];
}

let frame_piece rng ~max_line =
  match Prng.int rng 6 with
  | 0 | 1 -> { bytes = Prng.choose rng valid_requests ^ "\n"; expect = `Ok }
  | 2 -> { bytes = garbage rng ^ "\n"; expect = `Code "E-USAGE" }
  | 3 -> { bytes = "\n"; expect = `Nothing }
  | 4 ->
      (* oversized: blows the frame bound by a seeded margin *)
      let pad = String.make (max_line + 1 + Prng.int rng 200) 'x' in
      {
        bytes = {|{"id":1,"kind":"predict","pad":"|} ^ pad ^ "\"}\n";
        expect = `Code "E-FRAME";
      }
  | _ ->
      {
        bytes = deadline_request ^ "\n";
        (* tiny budget: expired, out of fuel, or served from a warm
           cache before the clock ticks — all documented outcomes *)
        expect = `One_of [ "E-DEADLINE"; "E-FUEL"; "OK" ];
      }

let check_piece piece line =
  match piece.expect with
  | `Ok -> expect_ok line
  | `Code c -> expect_code c line
  | `One_of alts -> (
      match response_code line with
      | None when List.mem "OK" alts -> ()
      | Some c when List.mem c alts -> ()
      | None -> fail "expected one of %s, got ok" (String.concat "/" alts)
      | Some c ->
          fail "expected one of %s, got %s" (String.concat "/" alts) c)
  | `Nothing -> fail "blank line produced a response: %s" line

let phase_frames rng =
  let max_line = 256 in
  let srv =
    Server.create ~num_domains:0 ~max_line_bytes:max_line ~cache_capacity:32
      ()
  in
  for _ = 1 to 64 do
    let pieces =
      List.init (3 + Prng.int rng 5) (fun _ -> frame_piece rng ~max_line)
    in
    (* half the streams die mid-line: the tail earns one E-FRAME *)
    let truncated = Prng.bool rng in
    let raw =
      String.concat "" (List.map (fun p -> p.bytes) pieces)
      ^ if truncated then {|{"id":9,"kind":"sta|} else ""
    in
    let expecting =
      List.filter (fun p -> p.expect <> `Nothing) pieces
      @
      if truncated then [ { bytes = ""; expect = `Code "E-FRAME" } ] else []
    in
    trial ~n:(List.length expecting) ();
    let got = serve_raw srv raw in
    if List.length got <> List.length expecting then
      fail "stream of %d frames answered %d responses"
        (List.length expecting) (List.length got)
    else List.iter2 check_piece expecting got
  done

(* ------------------------------------------------------------------ *)
(* Phase 3: pool supervision, deterministically.

   Two tasks rendezvous (so they occupy both executors of a 1-worker
   pool — one IS the worker) and then both raise: exactly one panic
   lands on the worker domain, which must die, be respawned within the
   budget, and still leave both batch slots filled with [Error]. *)

exception Boom

let phase_pool_supervision () =
  trial ();
  (* atomic, and polled: the respawn happens on the dying domain after
     the batch has already completed, so it races a naive read *)
  let restarts = Atomic.make 0 in
  Pool.with_pool ~num_domains:1 ~restart_budget:4
    ~on_restart:(fun _ -> Atomic.incr restarts)
    (fun pool ->
      let m = Mutex.create () in
      let cv = Condition.create () in
      let here = ref 0 in
      let rendezvous () =
        Mutex.lock m;
        incr here;
        if !here >= 2 then Condition.broadcast cv
        else
          while !here < 2 do
            Condition.wait cv m
          done;
        Mutex.unlock m
      in
      let boom () =
        rendezvous ();
        raise Boom
      in
      (match Pool.run_results pool [ boom; boom ] with
      | [ Error Boom; Error Boom ] -> ()
      | _ -> fail "supervised batch did not report both panics");
      let deadline = Unix.gettimeofday () +. 5.0 in
      while Atomic.get restarts < 1 && Unix.gettimeofday () < deadline do
        Thread.yield ()
      done;
      if Atomic.get restarts <> 1 then
        fail "expected exactly one worker respawn, saw %d"
          (Atomic.get restarts);
      (* the respawned worker still executes work *)
      match Pool.run_results pool [ (fun () -> 17) ] with
      | [ Ok 17 ] -> ()
      | _ -> fail "pool dead after respawn")

(* ------------------------------------------------------------------ *)
(* Phase 4: socket storm — concurrent clients, overload bursts, worker
   panics, mid-request disconnects, all against one chaos server. *)

let sock_path =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "flexcl_chaos_%d.sock" (Unix.getpid ()))

let connect_retry () =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock_path) with
    | () -> Some fd
    | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if n = 0 then None
        else begin
          Thread.delay 0.05;
          go (n - 1)
        end
  in
  go 100

(* bounded line reader: a missing response within 10s is a hang *)
let read_line_bounded fd buf =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match String.index_opt !buf '\n' with
    | Some i ->
        let line = String.sub !buf 0 i in
        buf := String.sub !buf (i + 1) (String.length !buf - i - 1);
        Some line
    | None ->
        let left = deadline -. Unix.gettimeofday () in
        if left <= 0.0 then None
        else
          let readable =
            try
              let r, _, _ = Unix.select [ fd ] [] [] (Float.min left 0.5) in
              r <> []
            with Unix.Unix_error (Unix.EINTR, _, _) -> false
          in
          if not readable then go ()
          else
            let n =
              try Unix.read fd chunk 0 (Bytes.length chunk)
              with Unix.Unix_error _ -> 0
            in
            if n = 0 then None
            else begin
              buf := !buf ^ Bytes.sub_string chunk 0 n;
              go ()
            end
  in
  go ()

let send_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  try
    go 0;
    true
  with Unix.Unix_error _ -> false

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* one connection-worth of seeded chaos; returns trials performed *)
let socket_connection rng =
  match connect_retry () with
  | None ->
      fail "could not connect to chaos server";
      0
  | Some fd -> (
      let finish_reading sent =
        let buf = ref "" in
        let missing = ref 0 in
        for _ = 1 to sent do
          match read_line_bounded fd buf with
          | Some line -> expect_any line
          | None -> incr missing
        done;
        if !missing > 0 then
          fail "%d of %d responses never arrived" !missing sent;
        close_quiet fd;
        sent
      in
      match Prng.int rng 6 with
      | 0 ->
          (* plain request/response conversation *)
          let n = 1 + Prng.int rng 3 in
          let lines =
            List.init n (fun _ -> Prng.choose rng valid_requests ^ "\n")
          in
          if send_all fd (String.concat "" lines) then finish_reading n
          else begin
            close_quiet fd;
            n
          end
      | 1 ->
          (* overload burst: more simultaneous work than admission slots *)
          let n = 6 + Prng.int rng 6 in
          let lines =
            List.init n (fun _ -> Prng.choose rng valid_requests ^ "\n")
          in
          if send_all fd (String.concat "" lines) then finish_reading n
          else begin
            close_quiet fd;
            n
          end
      | 2 ->
          (* worker panic mixed into real traffic *)
          let lines =
            [
              Prng.choose rng valid_requests ^ "\n";
              panic_request ^ "\n";
              Prng.choose rng valid_requests ^ "\n";
            ]
          in
          if send_all fd (String.concat "" lines) then finish_reading 3
          else begin
            close_quiet fd;
            3
          end
      | 3 ->
          (* frame chaos on the wire *)
          let lines =
            [
              garbage rng ^ "\n";
              String.make 700 'z' ^ "\n";
              deadline_request ^ "\n";
            ]
          in
          if send_all fd (String.concat "" lines) then finish_reading 3
          else begin
            close_quiet fd;
            3
          end
      | 4 ->
          (* mid-request disconnect: half a frame, then vanish *)
          ignore (send_all fd {|{"id":1,"kind":"predict","workl|});
          close_quiet fd;
          1
      | _ ->
          (* fire-and-forget: full requests, never reads, disconnects *)
          let n = 1 + Prng.int rng 3 in
          let lines =
            List.init n (fun _ -> Prng.choose rng valid_requests ^ "\n")
          in
          ignore (send_all fd (String.concat "" lines));
          close_quiet fd;
          n)

let phase_socket seed srv =
  let n_threads = 6 and conns_per_thread = 24 in
  let threads =
    List.init n_threads (fun i ->
        Thread.create
          (fun () ->
            let rng = Prng.create (seed + (1000 * (i + 1))) in
            for _ = 1 to conns_per_thread do
              trial ~n:(socket_connection rng) ()
            done)
          ())
  in
  List.iter Thread.join threads;
  (* the server survived: a fresh connection still answers *)
  match connect_retry () with
  | None -> fail "server unreachable after the storm"
  | Some fd ->
      if send_all fd "{\"id\":1,\"kind\":\"stats\"}\n" then begin
        (match read_line_bounded fd (ref "") with
        | Some line -> expect_ok line
        | None -> fail "no stats response after the storm");
        trial ()
      end;
      close_quiet fd;
      (* supervision stayed within budget *)
      (match Json.of_string (Json.to_string (Server.stats_json srv)) with
      | Ok v -> (
          match
            Option.bind
              (Option.bind (Json.member "counters" v)
                 (Json.member "worker_restarts"))
              Json.to_int
          with
          | Some r when r > Pool.default_restart_budget ->
              fail "worker_restarts %d exceeded the budget" r
          | _ -> ())
      | Error _ -> fail "stats_json did not round-trip")

(* ------------------------------------------------------------------ *)
(* Phase 5: graceful shutdown under load *)

let phase_shutdown srv_thread =
  let hammers =
    List.init 3 (fun i ->
        Thread.create
          (fun () ->
            let rng = Prng.create (0xD0 + i) in
            let rec go n =
              if n > 0 then
                match connect_retry () with
                | None -> () (* listener already gone: acceptable *)
                | Some fd ->
                    let req = Prng.choose rng valid_requests ^ "\n" in
                    if send_all fd req then begin
                      (match read_line_bounded fd (ref "") with
                      | Some line ->
                          (* ok, a shed, or E-SHUTDOWN — all documented *)
                          expect_any line;
                          trial ()
                      | None -> () (* connection severed by drain *));
                      close_quiet fd;
                      go (n - 1)
                    end
                    else begin
                      close_quiet fd;
                      go (n - 1)
                    end
            in
            go 20)
          ())
  in
  Thread.delay 0.05;
  (match connect_retry () with
  | None -> fail "could not connect to request shutdown"
  | Some fd ->
      trial ();
      if send_all fd "{\"id\":1,\"kind\":\"shutdown\"}\n" then (
        match read_line_bounded fd (ref "") with
        | Some line -> expect_ok line
        | None -> fail "shutdown request got no acknowledgement");
      close_quiet fd);
  List.iter Thread.join hammers;
  (* the accept loop must return: a hang here trips the outer timeout *)
  Thread.join srv_thread;
  if Sys.file_exists sock_path then
    fail "socket file not unlinked after drain"

(* ------------------------------------------------------------------ *)

let () =
  let seed =
    match Sys.getenv_opt "CHAOS_SEED" with
    | Some s -> ( try int_of_string s with _ -> 0xC4A05)
    | None -> 0xC4A05
  in
  Printf.printf "chaos: seed %#x\n%!" seed;
  phase_inprocess (Prng.create seed);
  phase_frames (Prng.create (seed + 1));
  phase_pool_supervision ();
  (* the long-lived chaos server: worker domains, tight admission, small
     frames, panic endpoint armed *)
  let srv =
    Server.create ~num_domains:2 ~max_inflight:2 ~max_line_bytes:512
      ~cache_capacity:32 ~drain_timeout_ms:2000 ~chaos:true ()
  in
  let srv_thread =
    Thread.create (fun () -> Server.serve_unix_socket srv sock_path) ()
  in
  phase_socket (seed + 2) srv;
  phase_shutdown srv_thread;
  Printf.printf "chaos: %d trials, %d failures\n%!" !trials !failures;
  if !trials < 500 then begin
    prerr_endline "CHAOS FAIL: fewer than 500 trials ran";
    exit 1
  end;
  exit (if !failures = 0 then 0 else 1)
