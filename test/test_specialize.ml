(* Differential lockdown of the staged model (Model.specialize,
   DESIGN.md §11). The contract is *bitwise* equality, not approximate:

   - exhaustive: for every bundled Rodinia/PolyBench workload, every
     feasible point of the default design space (both communication
     modes), under default options and every single-switch ablation,
     [specialized_estimate] equals [Model.estimate] on every breakdown
     field, floats compared via [Int64.bits_of_float];
   - engine: a [Parsweep.sweep] on the specialized oracle returns
     bit-for-bit the ranking of the unspecialized oracle at 0 and 4
     domains, and pruned [best] with [specialized_bound] returns exactly
     the unpruned winner;
   - bound: [specialized_lower_bound] is bitwise [Model.lower_bound];
   - fallback: a design point whose wg size differs from the staged
     launch takes the full-estimate path and still agrees bitwise;
   - qcheck: random (workload, config) pairs — including infeasible
     knobs and wg sizes outside the space — agree bitwise whenever the
     reference path computes, and fail identically when it raises. *)

module W = Flexcl_workloads.Workload
module Launch = Flexcl_ir.Launch
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Space = Flexcl_dse.Space
module Parsweep = Flexcl_dse.Parsweep
module Explore = Flexcl_dse.Explore
module Prng = Flexcl_util.Prng

let check = Alcotest.check
let dev = Device.virtex7
let bits = Int64.bits_of_float

let field_diffs (a : Model.breakdown) (b : Model.breakdown) =
  let d = ref [] in
  let fail name = d := name :: !d in
  let int name x y = if x <> y then fail name in
  let fl name x y = if bits x <> bits y then fail name in
  int "ii_wi" a.Model.ii_wi b.Model.ii_wi;
  int "depth_pe" a.depth_pe b.depth_pe;
  int "rec_mii" a.rec_mii b.rec_mii;
  int "res_mii" a.res_mii b.res_mii;
  fl "l_pe" a.l_pe b.l_pe;
  int "n_pe_eff" a.n_pe_eff b.n_pe_eff;
  fl "l_cu" a.l_cu b.l_cu;
  int "n_cu_eff" a.n_cu_eff b.n_cu_eff;
  fl "l_comp_kernel" a.l_comp_kernel b.l_comp_kernel;
  fl "l_mem_wi" a.l_mem_wi b.l_mem_wi;
  int "dsp_footprint" a.dsp_footprint b.dsp_footprint;
  fl "cycles" a.cycles b.cycles;
  fl "seconds" a.seconds b.seconds;
  if
    List.length a.pattern_counts <> List.length b.pattern_counts
    || not
         (List.for_all2
            (fun (p, c) (p', c') -> p = p' && bits c = bits c')
            a.pattern_counts b.pattern_counts)
  then fail "pattern_counts";
  List.rev !d

let check_bitwise ~label expect got =
  match field_diffs expect got with
  | [] -> ()
  | ds ->
      Alcotest.failf "%s: fields differ [%s]; cycles %.17g vs %.17g" label
        (String.concat ", " ds) expect.Model.cycles got.Model.cycles

(* ------------------------------------------------------------------ *)
(* Exhaustive: every workload × every feasible point × every options
   variant. Points are grouped per wg size so each (wg, options) pair
   stages exactly one specialization, like a sweep chunk does. *)

let test_exhaustive_differential () =
  let points = ref 0 in
  List.iter
    (fun w ->
      let base = Gen.analysis_of w in
      let space = Gen.space_of w in
      let feasible = Space.feasible_points dev base space in
      let by_wg = Hashtbl.create 8 in
      List.iter
        (fun (c : Config.t) ->
          let l =
            match Hashtbl.find_opt by_wg c.Config.wg_size with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add by_wg c.Config.wg_size l;
                l
          in
          l := c :: !l)
        feasible;
      Hashtbl.iter
        (fun wg cfgs ->
          let a = Explore.analysis_for base wg in
          List.iter
            (fun (oname, options) ->
              let sp = Model.specialize ~options dev a in
              List.iter
                (fun cfg ->
                  incr points;
                  check_bitwise
                    ~label:
                      (Printf.sprintf "%s %s [%s]" (W.name w)
                         (Config.to_string cfg) oname)
                    (Model.estimate ~options dev a cfg)
                    (Model.specialized_estimate sp cfg))
                !cfgs)
            Gen.options_variants)
        by_wg)
    Gen.all_workloads;
  check Alcotest.bool "covered a real point count" true (!points > 10_000)

(* ------------------------------------------------------------------ *)
(* Engine-level identity: rankings and pruned best *)

let show_point (e : Parsweep.evaluated) =
  Printf.sprintf "%s @ %.17g" (Config.to_string e.Parsweep.config)
    e.Parsweep.cycles

let test_sweep_ranking_identical () =
  List.iter
    (fun name ->
      let w = Gen.find_workload name in
      let base = Gen.analysis_of w in
      let space = Gen.space_of w in
      let expect =
        Parsweep.sweep ~num_domains:0 dev base space (Explore.model_oracle dev)
      in
      List.iter
        (fun nd ->
          let got =
            Parsweep.sweep ~num_domains:nd dev base space
              (Explore.specialized_model_oracle dev)
          in
          check Alcotest.bool
            (Printf.sprintf "%s: specialized ranking bit-identical @ %d domains"
               name nd)
            true (expect = got))
        [ 0; 4 ])
    [ "hotspot/hotspot"; "backprop/layer"; "gemm/gemm"; "nn/nn" ]

let test_pruned_best_identical () =
  List.iter
    (fun w ->
      let base = Gen.analysis_of w in
      let space = Gen.space_of w in
      let plain, _ =
        Parsweep.best ~num_domains:0 dev base space (Explore.model_oracle dev)
      in
      let pruned, stats =
        Parsweep.best ~num_domains:0 ~bound:(Explore.specialized_bound dev) dev
          base space
          (Explore.specialized_model_oracle dev)
      in
      let show = function Some e -> show_point e | None -> "none" in
      check Alcotest.string (W.name w) (show plain) (show pruned);
      check Alcotest.bool
        (Printf.sprintf "%s: counters cover the space" (W.name w))
        true
        (stats.Parsweep.evaluated + stats.Parsweep.pruned + stats.Parsweep.failed
        = stats.Parsweep.total))
    Gen.all_workloads

let test_specialized_bound_bitwise () =
  let rng = Prng.create 0x5bec1a1 in
  let checked = ref 0 in
  List.iter
    (fun w ->
      let base = Gen.analysis_of w in
      let space = Gen.space_of w in
      List.iter
        (fun (c : Config.t) ->
          let a = Explore.analysis_for base c.Config.wg_size in
          let sp = Model.specialize dev a in
          incr checked;
          let expect = Model.lower_bound dev a c in
          let got = Model.specialized_lower_bound sp c in
          if bits expect <> bits got then
            Alcotest.failf "%s %s: bound %.17g vs %.17g" (W.name w)
              (Config.to_string c) expect got)
        (Gen.sample_feasible rng dev base space 8))
    Gen.all_workloads;
  check Alcotest.bool "sampled enough points" true (!checked >= 300)

(* ------------------------------------------------------------------ *)
(* wg-size fallback *)

let test_wg_mismatch_falls_back () =
  let w = Gen.find_workload "hotspot/hotspot" in
  let base = Gen.analysis_of w in
  let wg0 = Launch.wg_size base.Analysis.launch in
  let sp = Model.specialize dev base in
  check Alcotest.bool "staged analysis is the input" true
    (Model.specialized_analysis sp == base);
  List.iter
    (fun wg ->
      if wg <> wg0 then
        let cfg =
          {
            Config.wg_size = wg;
            n_pe = 2;
            n_cu = 2;
            wi_pipeline = true;
            comm_mode = Config.Pipeline_mode;
          }
        in
        check_bitwise
          ~label:(Printf.sprintf "fallback wg%d" wg)
          (Model.estimate dev base cfg)
          (Model.specialized_estimate sp cfg))
    [ 32; 128; 256 ]

(* ------------------------------------------------------------------ *)
(* qcheck: random (workload, config) pairs, any wg size, any knobs *)

let run_both (name, cfg) =
  let w = Gen.find_workload name in
  let base = Gen.analysis_of w in
  let sp = Model.specialize dev base in
  let wrap f = try Ok (f ()) with exn -> Error (Printexc.to_string exn) in
  let expect = wrap (fun () -> Model.estimate dev base cfg) in
  let got = wrap (fun () -> Model.specialized_estimate sp cfg) in
  (expect, got)

let prop_random_configs =
  QCheck.Test.make ~name:"random configs agree bitwise (or fail identically)"
    ~count:250 Gen.qcheck_workload_config (fun (name, cfg) ->
      match run_both (name, cfg) with
      | Ok expect, Ok got ->
          (match field_diffs expect got with
          | [] -> true
          | ds ->
              QCheck.Test.fail_reportf "%s %s: fields differ [%s]" name
                (Config.to_string cfg)
                (String.concat ", " ds))
      | Error _, Error _ ->
          (* both paths reject the point (e.g. wg size incompatible with
             the NDRange): agreement is all the contract asks *)
          true
      | Ok _, Error e ->
          QCheck.Test.fail_reportf "%s %s: specialized failed (%s)" name
            (Config.to_string cfg) e
      | Error e, Ok _ ->
          QCheck.Test.fail_reportf "%s %s: only reference failed (%s)" name
            (Config.to_string cfg) e)

let suite =
  let t = Alcotest.test_case in
  [
    t "specialize: bitwise differential, all workloads × points × ablations"
      `Slow test_exhaustive_differential;
    t "specialize: sweep ranking identical at 0/4 domains" `Slow
      test_sweep_ranking_identical;
    t "specialize: pruned best = exact best, all workloads" `Slow
      test_pruned_best_identical;
    t "specialize: lower bound bitwise equal" `Slow
      test_specialized_bound_bitwise;
    t "specialize: wg mismatch falls back to estimate" `Quick
      test_wg_mismatch_falls_back;
    QCheck_alcotest.to_alcotest prop_random_configs;
  ]
