(* Lockdown of the parallel memoized sweep engine (Parsweep):

   - differential: the engine at 0/1/4 domains returns bit-for-bit the
     same ranking as an independent sequential reference sweep, for every
     Rodinia and PolyBench workload; best-mode pruning never changes the
     winner;
   - properties (seeded Prng): Model.lower_bound never exceeds the model
     estimate, and infeasible points (cost infinity) never outrank
     feasible ones;
   - golden: the best design point per Rodinia kernel on Virtex-7 is
     pinned, so a model or engine change that silently moves an optimum
     fails loudly;
   - failure handling: oracles that fail (non-finite cost) are filtered,
     never ranked, and an all-failure sweep reports a diagnostic. *)

module W = Flexcl_workloads.Workload
module Rodinia = Flexcl_workloads.Rodinia
module Polybench = Flexcl_workloads.Polybench
module Launch = Flexcl_ir.Launch
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Space = Flexcl_dse.Space
module Parsweep = Flexcl_dse.Parsweep
module Explore = Flexcl_dse.Explore
module Heuristic = Flexcl_dse.Heuristic
module Prng = Flexcl_util.Prng
module Diag = Flexcl_util.Diag

let check = Alcotest.check
let dev = Device.virtex7

(* workload corpus, analysis cache and design space come from the shared
   test/gen.ml generators *)
let all_workloads = Gen.all_workloads
let analysis_of = Gen.analysis_of
let space_of = Gen.space_of

let show_point (e : Parsweep.evaluated) =
  Printf.sprintf "%s @ %.17g" (Config.to_string e.Parsweep.config)
    e.Parsweep.cycles

let show_ranking es = String.concat "\n" (List.map show_point es)

(* ------------------------------------------------------------------ *)
(* Differential: engine vs an independent sequential reference sweep.

   The reference deliberately shares no code with Parsweep: its own
   per-wg analysis cache, its own filter, its own sort. *)

let reference_sweep device (base : Analysis.t) space oracle =
  let wg_cache : (int, Analysis.t) Hashtbl.t = Hashtbl.create 8 in
  let analysis_at wg =
    match Hashtbl.find_opt wg_cache wg with
    | Some a -> a
    | None ->
        let a =
          if Launch.wg_size base.Analysis.launch = wg then base
          else Analysis.with_wg_size base wg
        in
        Hashtbl.add wg_cache wg a;
        a
  in
  Space.feasible_points device base space
  |> List.filter_map (fun (c : Config.t) ->
         let cost = oracle (analysis_at c.Config.wg_size) c in
         if Float.is_finite cost then
           Some { Parsweep.config = c; cycles = cost }
         else None)
  |> List.sort (fun (a : Parsweep.evaluated) (b : Parsweep.evaluated) ->
         compare (a.Parsweep.cycles, a.Parsweep.config)
           (b.Parsweep.cycles, b.Parsweep.config))

let test_differential_all_workloads () =
  List.iter
    (fun w ->
      let base = analysis_of w in
      let space = space_of w in
      let oracle = Explore.model_oracle dev in
      let expect = reference_sweep dev base space oracle in
      List.iter
        (fun nd ->
          let got = Parsweep.sweep ~num_domains:nd dev base space oracle in
          check Alcotest.string
            (Printf.sprintf "%s @ %d domains" (W.name w) nd)
            (show_ranking expect) (show_ranking got);
          check Alcotest.bool
            (Printf.sprintf "%s @ %d domains (structural)" (W.name w) nd)
            true (expect = got))
        [ 0; 1; 4 ])
    all_workloads

let test_best_pruning_differential () =
  List.iter
    (fun w ->
      let base = analysis_of w in
      let space = space_of w in
      let oracle = Explore.model_oracle dev in
      let plain, _ = Parsweep.best ~num_domains:0 dev base space oracle in
      let pruned, stats =
        Parsweep.best ~num_domains:0 ~bound:(Model.lower_bound dev) dev base
          space oracle
      in
      let show = function Some e -> show_point e | None -> "none" in
      check Alcotest.string (W.name w) (show plain) (show pruned);
      check Alcotest.bool
        (Printf.sprintf "%s counters cover the space" (W.name w))
        true
        (stats.Parsweep.evaluated + stats.Parsweep.pruned
         + stats.Parsweep.failed
        = stats.Parsweep.total))
    all_workloads

let test_sweep_matches_explore () =
  (* Explore.exhaustive is a thin wrapper; keep it honest. *)
  let w = List.find (fun w -> W.name w = "hotspot/hotspot") Rodinia.all in
  let base = analysis_of w in
  let space = space_of w in
  let oracle = Explore.model_oracle dev in
  check Alcotest.bool "wrapper is the engine" true
    (Explore.exhaustive ~num_domains:0 dev base space oracle
    = Parsweep.sweep ~num_domains:0 dev base space oracle)

(* ------------------------------------------------------------------ *)
(* Properties, driven by the repo's seeded Prng. *)

let sample_feasible = Gen.sample_feasible

let test_lower_bound_sound () =
  (* lower_bound <= estimate over ~1k random feasible points, across all
     workloads and both devices. Tolerance covers float re-association
     between the bound's and the estimate's summations. *)
  let rng = Prng.create 0xf1ec5 in
  let checked = ref 0 in
  List.iter
    (fun w ->
      let base = analysis_of w in
      let space = space_of w in
      List.iter
        (fun device ->
          List.iter
            (fun (c : Config.t) ->
              let a = Parsweep.analysis_for base c.Config.wg_size in
              let cycles = Model.cycles device a c in
              let lb = Model.lower_bound device a c in
              incr checked;
              if not (lb <= (cycles *. (1. +. 1e-9)) +. 1e-6) then
                Alcotest.failf "%s %s on %s: lower_bound %.17g > cycles %.17g"
                  (W.name w) (Config.to_string c) device.Device.name lb cycles)
            (sample_feasible rng device base space 10))
        [ Device.virtex7; Device.ku060 ])
    all_workloads;
  check Alcotest.bool "sampled at least 1000 points" true (!checked >= 1000)

let test_lower_bound_positive_and_finite () =
  let rng = Prng.create 42 in
  List.iter
    (fun w ->
      let base = analysis_of w in
      let space = space_of w in
      List.iter
        (fun (c : Config.t) ->
          let a = Parsweep.analysis_for base c.Config.wg_size in
          let lb = Model.lower_bound dev a c in
          check Alcotest.bool
            (Printf.sprintf "%s %s bound finite >0" (W.name w)
               (Config.to_string c))
            true
            (Float.is_finite lb && lb > 0.))
        (sample_feasible rng dev base space 5))
    all_workloads

let test_infeasible_never_outranks () =
  (* Evaluate random raw points the way the heuristic does — infeasible
     ones cost infinity — and require every feasible point to rank
     strictly ahead of every infeasible one. *)
  let rng = Prng.create 7 in
  List.iter
    (fun w ->
      let base = analysis_of w in
      let space = space_of w in
      let raw = Array.of_list (Space.points space) in
      let sample = List.init 16 (fun _ -> Prng.choose rng raw) in
      let costed =
        List.map
          (fun (c : Config.t) ->
            let feasible = Model.feasible dev base c in
            let cost =
              if feasible then
                Model.cycles dev (Parsweep.analysis_for base c.Config.wg_size) c
              else infinity
            in
            (feasible, { Parsweep.config = c; cycles = cost }))
          sample
      in
      let ranked =
        List.sort
          (fun (_, (a : Parsweep.evaluated)) (_, (b : Parsweep.evaluated)) ->
            compare (a.Parsweep.cycles, a.Parsweep.config)
              (b.Parsweep.cycles, b.Parsweep.config))
          costed
      in
      (* once an infeasible point appears, no feasible point may follow *)
      let _ =
        List.fold_left
          (fun seen_infeasible (feasible, e) ->
            check Alcotest.bool
              (Printf.sprintf "%s: feasibility/cost agree for %s" (W.name w)
                 (Config.to_string e.Parsweep.config))
              feasible
              (Float.is_finite e.Parsweep.cycles);
            if seen_infeasible && feasible then
              Alcotest.failf "%s: feasible %s ranked below an infeasible point"
                (W.name w)
                (Config.to_string e.Parsweep.config);
            seen_infeasible || not feasible)
          false ranked
      in
      ())
    all_workloads

let test_heuristic_matches_any_domains () =
  let rng = Prng.create 99 in
  let picks = Array.of_list all_workloads in
  for _ = 1 to 8 do
    let w = Prng.choose rng picks in
    let base = analysis_of w in
    let space = space_of w in
    let oracle = Explore.model_oracle dev in
    let seq = Heuristic.search ~num_domains:0 dev base space oracle in
    let par = Heuristic.search ~num_domains:4 dev base space oracle in
    check Alcotest.string (W.name w) (show_point seq) (show_point par)
  done

(* ------------------------------------------------------------------ *)
(* Golden regression: the winning design point per Rodinia kernel on
   Virtex-7, as "config @ cycles" with cycles printed to the nearest
   cycle. Regenerate (deliberately, by hand) with:
     dune exec bench/main.exe -- dse-quality   (or re-run this test and
     copy the actual values from the failure diff). *)

let golden_rodinia_best =
  [
    ("backprop/layer", "wg256 pe4 cu4 pipe pipeline @ 2716");
    ("backprop/adjust", "wg256 pe4 cu4 nopipe pipeline @ 133752");
    ("bfs/bfs_1", "wg256 pe8 cu1 nopipe pipeline @ 13987");
    ("bfs/bfs_2", "wg256 pe1 cu4 nopipe pipeline @ 1836");
    ("b+tree/findK", "wg32 pe8 cu4 nopipe pipeline @ 23520");
    ("b+tree/rangeK", "wg256 pe4 cu1 pipe pipeline @ 80024");
    ("cfd/memset", "wg256 pe2 cu4 pipe pipeline @ 155");
    ("cfd/initialize", "wg256 pe4 cu4 nopipe pipeline @ 574");
    ("cfd/compute", "wg256 pe4 cu1 pipe pipeline @ 40088");
    ("cfd/time_step", "wg256 pe2 cu4 pipe pipeline @ 426");
    ("dwt2d/compute", "wg256 pe4 cu4 pipe pipeline @ 717");
    ("dwt2d/components", "wg256 pe2 cu4 pipe pipeline @ 570");
    ("dwt2d/component", "wg256 pe2 cu4 pipe pipeline @ 295");
    ("dwt2d/fdwt", "wg256 pe1 cu4 pipe pipeline @ 422");
    ("gaussian/fan1", "wg256 pe4 cu1 pipe pipeline @ 2164");
    ("gaussian/fan2", "wg64 pe2 cu4 nopipe pipeline @ 4308");
    ("hotspot/hotspot", "wg256 pe4 cu4 pipe pipeline @ 1400");
    ("hotspot3D/hotspot3D", "wg256 pe8 cu1 pipe pipeline @ 15563");
    ("hybridsort/count", "wg256 pe4 cu1 pipe pipeline @ 4321");
    ("hybridsort/prefix", "wg256 pe1 cu4 pipe pipeline @ 17606");
    ("hybridsort/sort", "wg256 pe4 cu1 nopipe pipeline @ 10123");
    ("kmeans/center", "wg256 pe2 cu4 pipe pipeline @ 6730");
    ("kmeans/swap", "wg256 pe4 cu1 pipe pipeline @ 17860");
    ("lavaMD/lavaMD", "wg256 pe2 cu4 pipe pipeline @ 38457");
    ("leukocyte/gicov", "wg256 pe2 cu4 pipe pipeline @ 14897");
    ("leukocyte/dilate", "wg256 pe4 cu4 pipe pipeline @ 7213");
    ("leukocyte/imgvf", "wg256 pe4 cu4 pipe pipeline @ 1037");
    ("lud/diagonal", "wg256 pe1 cu4 pipe pipeline @ 38829");
    ("lud/perimeter", "wg256 pe1 cu4 pipe pipeline @ 20397");
    ("nn/nn", "wg256 pe4 cu1 pipe pipeline @ 4504");
    ("nw/nw1", "wg32 pe1 cu4 nopipe pipeline @ 1324");
    ("nw/nw2", "wg32 pe1 cu4 nopipe pipeline @ 1297");
    ("particlefilter/find_index", "wg256 pe2 cu4 pipe pipeline @ 9318");
    ("particlefilter/normalize", "wg256 pe2 cu4 pipe pipeline @ 317");
    ("particlefilter/sum", "wg32 pe1 cu4 pipe pipeline @ 4600");
    ("particlefilter/likelihood", "wg256 pe2 cu4 pipe pipeline @ 2767");
    ("pathfinder/dynproc", "wg256 pe2 cu4 pipe pipeline @ 705");
    ("srad/extract", "wg256 pe2 cu4 pipe pipeline @ 322");
    ("srad/prepare", "wg256 pe2 cu4 pipe pipeline @ 419");
    ("srad/reduce", "wg32 pe1 cu4 pipe pipeline @ 6584");
    ("srad/srad", "wg256 pe2 cu4 pipe pipeline @ 2322");
    ("srad/srad2", "wg256 pe4 cu1 pipe pipeline @ 1879");
    ("srad/compress", "wg256 pe2 cu4 pipe pipeline @ 318");
    ("streamcluster/memset", "wg256 pe2 cu4 pipe pipeline @ 155");
    ("streamcluster/pgain", "wg256 pe4 cu1 pipe pipeline @ 17977");
  ]

let test_golden_rodinia_best () =
  List.iter
    (fun (name, expect) ->
      let w = List.find (fun w -> W.name w = name) Rodinia.all in
      let base = analysis_of w in
      let space = space_of w in
      let e = Explore.best ~num_domains:0 dev base space (Explore.model_oracle dev) in
      let got =
        Printf.sprintf "%s @ %.0f" (Config.to_string e.Parsweep.config)
          e.Parsweep.cycles
      in
      check Alcotest.string name expect got)
    golden_rodinia_best

(* ------------------------------------------------------------------ *)
(* Failure handling *)

let test_failing_oracle_points_filtered () =
  (* An oracle that fails (infinity, the sdaccel_oracle convention) on
     every barrier-mode point: those points must vanish from the ranking
     and be counted as failed, and the survivors must match a sweep of a
     clean oracle restricted to pipeline mode. *)
  let w = List.find (fun w -> W.name w = "nn/nn") Rodinia.all in
  let base = analysis_of w in
  let space = space_of w in
  let flaky a (c : Config.t) =
    if c.Config.comm_mode = Config.Barrier_mode then infinity
    else Explore.model_oracle dev a c
  in
  let ranked, stats = Parsweep.sweep_stats ~num_domains:0 dev base space flaky in
  check Alcotest.bool "no barrier point survives" true
    (List.for_all
       (fun (e : Parsweep.evaluated) ->
         e.Parsweep.config.Config.comm_mode = Config.Pipeline_mode)
       ranked);
  check Alcotest.bool "all costs finite" true
    (List.for_all (fun (e : Parsweep.evaluated) -> Float.is_finite e.Parsweep.cycles) ranked);
  check Alcotest.int "failed = barrier points" stats.Parsweep.failed
    (stats.Parsweep.total - List.length ranked);
  let pipeline_only =
    reference_sweep dev base { space with Space.comm_modes = [ Config.Pipeline_mode ] }
      (Explore.model_oracle dev)
  in
  check Alcotest.bool "survivors = clean pipeline-only sweep" true
    (ranked = pipeline_only)

let test_all_failures_reported () =
  let w = List.find (fun w -> W.name w = "nn/nn") Rodinia.all in
  let base = analysis_of w in
  let space = space_of w in
  let dead _ _ = infinity in
  check Alcotest.bool "exhaustive is empty" true
    (Explore.exhaustive ~num_domains:0 dev base space dead = []);
  (match Explore.best_result ~num_domains:0 dev base space dead with
  | Error d ->
      check Alcotest.bool "diagnostic names the oracle failures" true
        (Thelpers.contains (Diag.render d) "oracle")
  | Ok e -> Alcotest.failf "expected Error, got %s" (show_point e));
  match Explore.best ~num_domains:0 dev base space dead with
  | exception Invalid_argument _ -> ()
  | e -> Alcotest.failf "expected Invalid_argument, got %s" (show_point e)

let test_nan_costs_filtered () =
  let w = List.find (fun w -> W.name w = "nn/nn") Rodinia.all in
  let base = analysis_of w in
  let space = space_of w in
  let ranked = Parsweep.sweep ~num_domains:0 dev base space (fun _ _ -> nan) in
  check Alcotest.int "nan never ranks" 0 (List.length ranked)

let test_worker_exception_propagates () =
  let w = List.find (fun w -> W.name w = "nn/nn") Rodinia.all in
  let base = analysis_of w in
  let space = space_of w in
  List.iter
    (fun nd ->
      match
        Parsweep.sweep ~num_domains:nd dev base space (fun _ _ ->
            failwith "oracle exploded")
      with
      | exception Failure msg ->
          check Alcotest.string
            (Printf.sprintf "exn text @ %d domains" nd)
            "oracle exploded" msg
      | _ -> Alcotest.failf "expected Failure at %d domains" nd)
    [ 0; 4 ]

(* ------------------------------------------------------------------ *)
(* Harness invariants *)

let test_backtraces_enabled () =
  (* test/dune sets OCAMLRUNPARAM=b so failures in CI come with
     backtraces; this pins that the env stanza stays in place. *)
  check Alcotest.bool "OCAMLRUNPARAM=b is in effect" true
    (Printexc.backtrace_status ())

let suite =
  let t = Alcotest.test_case in
  [
    t "parsweep: differential vs reference, all workloads, 0/1/4 domains"
      `Slow test_differential_all_workloads;
    t "parsweep: pruned best = exact best, all workloads" `Slow
      test_best_pruning_differential;
    t "parsweep: Explore.exhaustive is the engine" `Quick
      test_sweep_matches_explore;
    t "model: lower_bound <= cycles on ~1k random feasible points" `Slow
      test_lower_bound_sound;
    t "model: lower_bound finite and positive" `Quick
      test_lower_bound_positive_and_finite;
    t "dse: infeasible points never outrank feasible ones" `Quick
      test_infeasible_never_outranks;
    t "heuristic: picks identical at any domain count" `Slow
      test_heuristic_matches_any_domains;
    t "golden: Rodinia best design points on Virtex-7" `Quick
      test_golden_rodinia_best;
    t "failures: failing points filtered, counted, never ranked" `Quick
      test_failing_oracle_points_filtered;
    t "failures: all-failure sweep reports a diagnostic" `Quick
      test_all_failures_reported;
    t "failures: nan costs filtered" `Quick test_nan_costs_filtered;
    t "failures: worker exception propagates with its message" `Quick
      test_worker_exception_propagates;
    t "harness: backtraces enabled via OCAMLRUNPARAM" `Quick
      test_backtraces_enabled;
  ]
