(* Shared seeded generators for the test suites (test/gen.ml).

   One home for the workload/analysis/design-point machinery that the
   differential suites (test_parsweep, test_trace, test_specialize) all
   need: the bundled workload list, a per-kernel analysis cache, the
   default design space, seeded feasible-point sampling, the
   single-switch options ablations, and qcheck generators for random
   configurations. Keeping them here means every suite draws from the
   same corpus and the same seeds instead of re-implementing (and
   silently diverging on) its own copy. *)

module W = Flexcl_workloads.Workload
module Rodinia = Flexcl_workloads.Rodinia
module Polybench = Flexcl_workloads.Polybench
module Launch = Flexcl_ir.Launch
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Space = Flexcl_dse.Space
module Prng = Flexcl_util.Prng

let all_workloads = Rodinia.all @ Polybench.all

let find_workload name = List.find (fun w -> W.name w = name) all_workloads

(* Analyses are expensive (parse + interpret); cache one per kernel,
   shared across every suite in the test binary. *)
let analysis_cache : (string, Analysis.t) Hashtbl.t = Hashtbl.create 64

let analysis_of (w : W.t) =
  match Hashtbl.find_opt analysis_cache (W.name w) with
  | Some a -> a
  | None ->
      let a = Analysis.analyze (W.parse w) w.W.launch in
      Hashtbl.replace analysis_cache (W.name w) a;
      a

let space_of (w : W.t) =
  Space.default ~total_work_items:(Launch.n_work_items w.W.launch)

(* Draw [n] feasible points uniformly (seeded). *)
let sample_feasible rng device base space n =
  let points = Array.of_list (Space.feasible_points device base space) in
  if Array.length points = 0 then []
  else List.init n (fun _ -> Prng.choose rng points)

(* Every single-switch ablation of [Model.options] — the axes the bench's
   ablation experiment turns off one at a time. Suites that claim a
   property "under every ablation" iterate this list. *)
let ablations =
  let d = Model.default_options in
  [
    ("no_cross_wi_coalescing", { d with Model.cross_wi_coalescing = false });
    ("no_warm_classification", { d with Model.warm_classification = false });
    ("no_bus_roofline", { d with Model.bus_roofline = false });
    ("no_multi_cu_dram_replay", { d with Model.multi_cu_dram_replay = false });
    ("vector_width_4", { d with Model.vector_width = 4 });
  ]

(* Default options plus each ablation, for "every options variant"
   sweeps. *)
let options_variants = ("default", Model.default_options) :: ablations

(* ------------------------------------------------------------------ *)
(* Golden regression rows: every bundled workload's best default-space
   design point on the default device (Virtex-7) at default options, as
   [(workload, config, cycles)] with cycles at full float precision.
   Computed through the staged oracle — bitwise-identical to the
   unspecialized model by the [test_specialize] contract — so
   [test/promote.ml] and [test/test_goldens.ml] agree by construction. *)

let golden_device = Flexcl_device.Device.virtex7

let golden_cycles_rows () =
  List.filter_map
    (fun w ->
      let base = analysis_of w in
      let space = space_of w in
      match
        Flexcl_dse.Parsweep.best ~num_domains:0 golden_device base space
          (Flexcl_dse.Explore.specialized_model_oracle golden_device)
      with
      | Some e, _ ->
          Some
            ( W.name w,
              Config.to_string e.Flexcl_dse.Parsweep.config,
              e.Flexcl_dse.Parsweep.cycles )
      | None, _ -> None)
    all_workloads

let golden_line (name, cfg, cycles) =
  Printf.sprintf "%s | %s | %.17g" name cfg cycles

(* ------------------------------------------------------------------ *)
(* qcheck generators *)

(* A random configuration, not necessarily feasible and not necessarily
   inside [Space.default] — wg sizes beyond the space exercise
   re-analysis and specialization fallback paths. *)
let qcheck_config =
  let open QCheck.Gen in
  let gen =
    let* wg = oneofl [ 16; 32; 64; 128; 256 ] in
    let* n_pe = oneofl [ 1; 2; 3; 4; 8; 16 ] in
    let* n_cu = oneofl [ 1; 2; 3; 4; 8 ] in
    let* wi_pipeline = bool in
    let+ comm_mode = oneofl [ Config.Barrier_mode; Config.Pipeline_mode ] in
    { Config.wg_size = wg; n_pe; n_cu; wi_pipeline; comm_mode }
  in
  QCheck.make ~print:Config.to_string gen

(* A random (workload, configuration) pair over the bundled corpus. *)
let qcheck_workload_config =
  let open QCheck.Gen in
  let names = Array.of_list (List.map W.name all_workloads) in
  let gen =
    let* name = oneofa names in
    let+ cfg = QCheck.gen qcheck_config in
    (name, cfg)
  in
  QCheck.make
    ~print:(fun (name, cfg) ->
      Printf.sprintf "%s %s" name (Config.to_string cfg))
    gen
